"""The oracle registry: fast-path vs reference differential checks.

Every performance-bearing path in the repo promises *byte-identical*
results to a slow reference — parallel kernels vs serial, canonical-form
caches vs cold, covindex delta coverage vs full VF2 rescan, incremental
FCT/index maintenance vs rebuild.  Each :class:`Oracle` here packages
one such promise as a pure function ``(workload) -> Mismatch | None``:
it runs both sides on the same :class:`~repro.check.workload.Workload`
and reports the first disagreement.  Metamorphic oracles (``canonical``,
``ged``, ``scov``) check properties with no second implementation —
vertex-ID permutation invariance, bound sandwiches, the triangle
inequality, insert-only monotonicity.

Oracles are deterministic, isolated (each installs its own ambient
toggles and a fresh cache manager; nothing leaks between runs) and
exception-safe only by convention — the fuzzer's ``evaluate`` wrapper
converts an escaped exception into a ``Mismatch(code="exception")``, so
a crash is a finding, not a harness failure.

``workload_kwargs`` per oracle tunes the fuzzer's generator: the ``vf2``
and ``ged`` oracles need tiny graphs (brute force / exact A*), ``index``
bounds the deletion fraction per batch because the FCT incremental ≡
rebuild identity holds only while support inflation stays under the 2×
relaxed-threshold headroom (paper Lemmas 3.4/4.5 — see
``docs/CORRECTNESS.md``), and ``scov`` wants insert-only batches.
"""

from __future__ import annotations

import itertools
from collections.abc import Callable, Mapping
from dataclasses import dataclass, field

from ..cache.keys import graph_key
from ..cache.stores import (
    CacheManager,
    cached_ged_value,
    set_caches,
    use_caching,
)
from ..covindex.bitset import available_substrates, use_substrate
from ..covindex.engine import use_covindex
from ..covindex.fragments import use_fragments
from ..covindex.index import CoverageIndex
from ..exceptions import InvariantViolation
from ..ged import ged
from ..graph.canonical import canonical_certificate
from ..graph.labeled_graph import LabeledGraph
from ..index.maintenance import IndexPair
from ..isomorphism.matcher import contains, count_embeddings
from ..parallel.pool import shared_pool, use_pool
from ..patterns.metrics import CoverageOracle
from ..serve.snapshot import SnapshotStore, build_snapshot
from ..trees.maintenance import FCTSet
from .invariants import check_coverage_index, check_engine
from .workload import Mismatch, Workload, permuted_copy

#: Support threshold used by the ``index`` oracle's FCT sets — high
#: enough that mining tiny fuzz views stays cheap.
FCT_SUP_MIN = 0.4

#: Exact GED (A*) and the triangle-inequality sweep only run on graphs
#: this small; beyond it the ``ged`` oracle checks bound consistency.
EXACT_GED_MAX_VERTICES = 4


@dataclass(frozen=True)
class Oracle:
    """One differential (or metamorphic) check, registry-addressable."""

    name: str
    description: str
    fn: Callable[[Workload], Mismatch | None]
    #: Generator hints for :func:`repro.check.fuzz.random_workload`.
    workload_kwargs: Mapping = field(default_factory=dict)

    def __call__(self, workload: Workload) -> Mismatch | None:
        return self.fn(workload)


# ----------------------------------------------------------------------
# shared helpers
# ----------------------------------------------------------------------
def _all_graphs(workload: Workload) -> list[tuple[str, LabeledGraph]]:
    """Every distinct graph object in the workload, with a locator tag."""
    entries = [
        (f"initial[{gid}]", graph)
        for gid, graph in sorted(workload.graphs.items())
    ]
    for step, batch in enumerate(workload.batches):
        entries.extend(
            (f"batch[{step}].added[{gid}]", graph)
            for gid, graph in sorted(batch.added.items())
        )
    entries.extend(
        (f"pattern[{i}]", pattern)
        for i, pattern in enumerate(workload.patterns)
    )
    return entries


def _cover_ged_trace(workload: Workload) -> list[tuple]:
    """Per-view cover sets and pairwise GED values, via ambient knobs.

    Runs the exact production call path (plain :class:`CoverageOracle`
    per view plus :func:`cached_ged_value`), so whatever toggles the
    caller installed — caching, a kernel pool — are what's under test.
    """
    trace: list[tuple] = []
    pairs = list(itertools.combinations(workload.patterns, 2))
    for view in workload.views():
        oracle = CoverageOracle(view)
        covers = tuple(
            oracle.cover(pattern) for pattern in workload.patterns
        )
        distances = tuple(
            cached_ged_value(a, b, method)
            for method in ("lower", "tight_lower")
            for a, b in pairs
        )
        trace.append((covers, distances))
    return trace


def _brute_force_embeddings(
    host: LabeledGraph, pattern: LabeledGraph
) -> int:
    """Count monomorphisms by enumerating injective vertex maps.

    The independent reference for VF2: label-preserving injections under
    which every pattern edge maps to a host edge (non-induced, matching
    :func:`repro.isomorphism.matcher.contains`).
    """
    pattern_vertices = sorted(pattern.vertices(), key=repr)
    pattern_edges = list(pattern.edges())
    host_vertices = sorted(host.vertices(), key=repr)
    if len(pattern_vertices) > len(host_vertices):
        return 0
    count = 0
    for image in itertools.permutations(
        host_vertices, len(pattern_vertices)
    ):
        mapping = dict(zip(pattern_vertices, image))
        if any(
            pattern.label(v) != host.label(mapping[v])
            for v in pattern_vertices
        ):
            continue
        if all(
            host.has_edge(mapping[u], mapping[v])
            for u, v in pattern_edges
        ):
            count += 1
    return count


# ----------------------------------------------------------------------
# differential oracles
# ----------------------------------------------------------------------
def vf2_oracle(workload: Workload) -> Mismatch | None:
    """VF2 seeded vs unseeded vs brute force on small graphs."""
    hosts = [
        (tag, graph)
        for tag, graph in _all_graphs(workload)
        if not tag.startswith("pattern")
    ]
    for tag, host in hosts:
        index = CoverageIndex.build({0: host})
        for i, pattern in enumerate(workload.patterns):
            brute = _brute_force_embeddings(host, pattern)
            plain = contains(host, pattern)
            if plain != (brute > 0):
                return Mismatch(
                    "vf2",
                    "contains_vs_brute_force",
                    {"host": tag, "pattern": i, "vf2": plain, "brute": brute},
                )
            candidates = index.candidate_bits(pattern)
            if brute > 0 and not candidates:
                return Mismatch(
                    "vf2",
                    "filter_unsound",
                    {"host": tag, "pattern": i, "brute": brute},
                )
            if candidates:
                domains = index.vertex_domains(pattern, 0, host)
                seeded = contains(host, pattern, domains=domains)
                if seeded != plain:
                    return Mismatch(
                        "vf2",
                        "seeded_vs_unseeded",
                        {
                            "host": tag,
                            "pattern": i,
                            "seeded": seeded,
                            "unseeded": plain,
                        },
                    )
            counted = count_embeddings(host, pattern)
            if counted != brute:
                return Mismatch(
                    "vf2",
                    "count_vs_brute_force",
                    {"host": tag, "pattern": i, "vf2": counted, "brute": brute},
                )
    return None


def covindex_oracle(workload: Workload) -> Mismatch | None:
    """Engine-backed delta coverage vs a full-scan oracle per view.

    Two engine-backed oracles advance in lock-step — one on the ambient
    default substrate (numpy where available), one pinned to the
    plain-int reference — and both must agree with a fresh full-scan
    oracle at every view.  Their indices and exported verdict bitsets
    must also stay identical in canonical int form, the substrate
    equivalence contract of docs/PERFORMANCE.md.
    """
    default_substrate = (
        "numpy" if "numpy" in available_substrates() else "int"
    )
    with use_substrate(default_substrate), use_covindex(True):
        fast = CoverageOracle(dict(workload.graphs))
    with use_substrate("int"), use_covindex(True):
        twin = CoverageOracle(dict(workload.graphs))
    for step, view in enumerate(workload.views()):
        if step > 0:
            batch = workload.batches[step - 1]
            fast.apply_update(batch.added, batch.removed)
            twin.apply_update(batch.added, batch.removed)
        with use_covindex(False):
            reference = CoverageOracle(view)
        for i, pattern in enumerate(workload.patterns):
            want = reference.cover(pattern)
            for label, oracle in (("engine", fast), ("int_twin", twin)):
                got = oracle.cover(pattern)
                if got != want:
                    return Mismatch(
                        "covindex",
                        "cover_mismatch",
                        {
                            "view": step,
                            "pattern": i,
                            "substrate": label,
                            "engine": sorted(got),
                            "full_scan": sorted(want),
                        },
                    )
        engine = fast._engine  # noqa: SLF001 - oracle inspects internals
        int_engine = twin._engine  # noqa: SLF001
        if engine is None or int_engine is None:
            continue
        if engine.index.snapshot() != CoverageIndex.build(view).snapshot():
            return Mismatch(
                "covindex",
                "index_snapshot_drift",
                {"view": step},
            )
        if engine.index.snapshot() != int_engine.index.snapshot():
            return Mismatch(
                "covindex",
                "substrate_snapshot_drift",
                {"view": step, "substrates": [engine.substrate, "int"]},
            )
        if engine.export_verdicts() != int_engine.export_verdicts():
            return Mismatch(
                "covindex",
                "substrate_verdict_drift",
                {"view": step, "substrates": [engine.substrate, "int"]},
            )
        for guarded in (engine, int_engine):
            try:
                check_engine(guarded)
                check_coverage_index(guarded.index, view)
            except InvariantViolation as exc:
                return Mismatch(
                    "covindex",
                    "invariant",
                    {
                        "view": step,
                        "substrate": guarded.substrate,
                        "name": exc.name,
                        "detail": exc.detail,
                    },
                )
    return None


def fragments_oracle(workload: Workload) -> Mismatch | None:
    """Fragment network on vs off: identical verdicts at every view.

    Two engine-backed oracles advance in lock-step over the batch
    trajectory — one with the shared sub-pattern match network on, one
    with it off — and both must agree with a fresh full-scan oracle at
    every view.  The exported verdict bitsets must be identical too
    (the network only prunes candidates VF2 would reject, so seen/match
    bits converge to the same values once a pattern is drained), every
    drained materialized fragment view must equal a direct VF2 sweep of
    the fragment over the view, and the fragment invariant guards
    (``covindex.frag_*``) must hold throughout.
    """
    with use_covindex(True), use_fragments(True):
        networked = CoverageOracle(dict(workload.graphs))
    with use_covindex(True), use_fragments(False):
        plain = CoverageOracle(dict(workload.graphs))
    for step, view in enumerate(workload.views()):
        if step > 0:
            batch = workload.batches[step - 1]
            networked.apply_update(batch.added, batch.removed)
            plain.apply_update(batch.added, batch.removed)
        with use_covindex(False):
            reference = CoverageOracle(view)
        for i, pattern in enumerate(workload.patterns):
            want = reference.cover(pattern)
            for label, oracle in (
                ("network_on", networked),
                ("network_off", plain),
            ):
                got = oracle.cover(pattern)
                if got != want:
                    return Mismatch(
                        "fragments",
                        "cover_mismatch",
                        {
                            "view": step,
                            "pattern": i,
                            "network": label,
                            "engine": sorted(got),
                            "full_scan": sorted(want),
                        },
                    )
        engine = networked._engine  # noqa: SLF001 - oracle inspects internals
        off_engine = plain._engine  # noqa: SLF001
        if engine is None or off_engine is None or engine.network is None:
            continue
        if engine.export_verdicts() != off_engine.export_verdicts():
            return Mismatch(
                "fragments",
                "verdict_drift",
                {"view": step},
            )
        network = engine.network
        for fragment_key in network.fragment_keys():
            state = network.fragment(fragment_key)
            if not state.materialized or state.seen_count != len(view):
                continue
            expected_bits = 0
            for graph_id, host in view.items():
                if contains(host, state.graph):
                    expected_bits |= 1 << graph_id
            if state.match_bits != expected_bits:
                return Mismatch(
                    "fragments",
                    "fragment_view_drift",
                    {
                        "view": step,
                        "fragment_edges": state.graph.num_edges,
                        "view_bits": state.match_bits,
                        "direct_bits": expected_bits,
                    },
                )
        try:
            check_engine(engine)
        except InvariantViolation as exc:
            return Mismatch(
                "fragments",
                "invariant",
                {"view": step, "name": exc.name, "detail": exc.detail},
            )
    return None


def cache_oracle(workload: Workload) -> Mismatch | None:
    """Cache-on (cold and warm) vs cache-off cover/GED traces."""
    with use_covindex(False), use_caching(False):
        baseline = _cover_ged_trace(workload)
    previous = set_caches(CacheManager())
    try:
        with use_covindex(False), use_caching(True):
            cold = _cover_ged_trace(workload)
            warm = _cover_ged_trace(workload)
    finally:
        set_caches(previous)
    for label, trace in (("cold", cold), ("warm", warm)):
        if trace != baseline:
            view = next(
                i for i, (a, b) in enumerate(zip(trace, baseline)) if a != b
            )
            return Mismatch(
                "cache",
                f"{label}_mismatch",
                {"view": view},
            )
    return None


def parallel_oracle(workload: Workload) -> Mismatch | None:
    """Kernel fan-out vs the serial loop at 2 and 4 workers, same trace.

    Runs every worker count twice: engine off (legacy host-shipping
    kernels) and engine on (persistent workers resolving hosts from a
    published view via ``contains_view_kernel``).  All traces must equal
    the covindex-off serial reference.
    """
    with use_covindex(False), use_caching(False):
        serial = _cover_ged_trace(workload)
    with use_covindex(True), use_caching(False):
        engine_serial = _cover_ged_trace(workload)
    if engine_serial != serial:
        view = next(
            i
            for i, (a, b) in enumerate(zip(engine_serial, serial))
            if a != b
        )
        return Mismatch(
            "parallel",
            "trace_mismatch",
            {"view": view, "workers": 1, "covindex": True},
        )
    for workers in (2, 4):
        for covindex in (False, True):
            with use_covindex(covindex), use_caching(False), use_pool(
                shared_pool(workers)
            ):
                fanned = _cover_ged_trace(workload)
            if fanned != serial:
                view = next(
                    i
                    for i, (a, b) in enumerate(zip(fanned, serial))
                    if a != b
                )
                return Mismatch(
                    "parallel",
                    "trace_mismatch",
                    {"view": view, "workers": workers, "covindex": covindex},
                )
    return None


def _fct_snapshot(fct_set: FCTSet) -> set[tuple]:
    return {(repr(t.key), t.support_count) for t in fct_set.fcts()}


def _index_pair_state(pair: IndexPair) -> tuple:
    rows = tuple(
        (repr(key), tuple(sorted(pair.fct.tg.row(key).items())))
        for key in sorted(pair.fct.feature_keys(), key=repr)
    )
    labels = tuple(sorted(pair.ife.edge_labels()))
    postings = tuple(
        (label, tuple(sorted(pair.ife.graphs_with_edge(label))))
        for label in labels
    )
    return (rows, labels, postings)


def index_oracle(workload: Workload) -> Mismatch | None:
    """Incremental FCT/index/covindex maintenance vs rebuild per view.

    Precondition (enforced by the generator hints): deletions per batch
    stay well under half the view, the Lemma 3.4/4.5 regime in which the
    relaxed-threshold pool provably absorbs support inflation.
    """
    views = list(workload.views())
    if not views[0]:
        return None
    incremental = FCTSet(views[0], sup_min=FCT_SUP_MIN)
    pair = IndexPair.build(incremental, views[0])
    cov = CoverageIndex.build(views[0])
    current = dict(views[0])
    for step, batch in enumerate(workload.batches):
        view = views[step + 1]
        removed = [gid for gid in batch.removed if gid in current]
        # An insert of an existing id is an in-place replacement; the
        # FCT/index layers model it as remove-then-add.
        removed += [
            gid
            for gid in batch.added
            if gid in current and gid not in removed
        ]
        incremental.apply(added=batch.added, removed=removed)
        scratch = FCTSet(view, sup_min=FCT_SUP_MIN)
        if _fct_snapshot(incremental) != _fct_snapshot(scratch):
            return Mismatch(
                "index",
                "fct_incremental_vs_rebuild",
                {
                    "view": step + 1,
                    "incremental": sorted(_fct_snapshot(incremental)),
                    "rebuild": sorted(_fct_snapshot(scratch)),
                },
            )
        pair.apply_update(incremental, view, list(batch.added), removed)
        fresh = IndexPair.build(incremental, view)
        if _index_pair_state(pair) != _index_pair_state(fresh):
            return Mismatch(
                "index",
                "index_pair_incremental_vs_rebuild",
                {"view": step + 1},
            )
        for gid in removed:
            cov.remove_graph(gid)
        for gid, graph in batch.added.items():
            cov.add_graph(gid, graph)
        if cov.snapshot() != CoverageIndex.build(view).snapshot():
            return Mismatch(
                "index",
                "covindex_incremental_vs_rebuild",
                {"view": step + 1},
            )
        try:
            check_coverage_index(cov, view)
        except InvariantViolation as exc:
            return Mismatch(
                "index",
                "invariant",
                {"view": step + 1, "name": exc.name, "detail": exc.detail},
            )
        current = dict(view)
    return None


# ----------------------------------------------------------------------
# metamorphic oracles
# ----------------------------------------------------------------------
def canonical_oracle(workload: Workload) -> Mismatch | None:
    """Canonical certificates are vertex-ID permutation invariant."""
    for tag, graph in _all_graphs(workload):
        certificate = canonical_certificate(graph)
        key = graph_key(graph)
        for seed in (1, 2, 3):
            twin = permuted_copy(graph, seed)
            if canonical_certificate(twin) != certificate:
                return Mismatch(
                    "canonical",
                    "certificate_not_invariant",
                    {"graph": tag, "seed": seed},
                )
            if graph_key(twin) != key:
                return Mismatch(
                    "canonical",
                    "graph_key_not_invariant",
                    {"graph": tag, "seed": seed},
                )
    return None


def ged_oracle(workload: Workload) -> Mismatch | None:
    """GED bound sandwich, identity, permutation invariance, triangle.

    ``bipartite`` and ``beam`` are excluded from the invariance sweep:
    both derive their bound from one concrete edit path (the assignment
    scipy's LP tie-breaking picks / the beam's expansion order), so the
    *value* is legitimately vertex-order dependent even though it always
    stays a sound upper bound — the fuzzer found exactly this on its
    first sweep (triaged waiver in ``docs/CORRECTNESS.md``).  The
    permuted upper bounds are still checked against the (invariant)
    lower bounds.
    """
    graphs = [g for _, g in _all_graphs(workload)][:6]
    tiny = [g for g in graphs if g.num_vertices <= EXACT_GED_MAX_VERTICES]
    for i, graph in enumerate(graphs):
        for method in ("lower", "tight_lower"):
            if ged(graph, graph, method=method) != 0:
                return Mismatch(
                    "ged", "identity_not_zero", {"graph": i, "method": method}
                )
    for i, j in itertools.combinations(range(len(graphs)), 2):
        a, b = graphs[i], graphs[j]
        lower = ged(a, b, method="lower")
        tight = ged(a, b, method="tight_lower")
        bipartite = ged(a, b, method="bipartite")
        beam = ged(a, b, method="beam")
        bounds = {
            "lower": lower,
            "tight_lower": tight,
            "bipartite": bipartite,
            "beam": beam,
        }
        if not (lower <= tight <= min(bipartite, beam)):
            return Mismatch(
                "ged", "bound_sandwich", {"pair": [i, j], **bounds}
            )
        if a in tiny and b in tiny:
            exact = ged(a, b, method="exact")
            if not (tight <= exact <= min(bipartite, beam)):
                return Mismatch(
                    "ged",
                    "exact_outside_bounds",
                    {"pair": [i, j], "exact": exact, **bounds},
                )
        for method in ("lower", "tight_lower"):
            permuted = ged(permuted_copy(a, 5), b, method=method)
            if permuted != bounds[method]:
                return Mismatch(
                    "ged",
                    "not_permutation_invariant",
                    {
                        "pair": [i, j],
                        "method": method,
                        "original": bounds[method],
                        "permuted": permuted,
                    },
                )
        # Upper bounds may move under permutation (see docstring) but
        # must remain upper bounds: never below the invariant lower
        # bounds of the same pair.
        for method in ("bipartite", "beam"):
            permuted = ged(permuted_copy(a, 5), b, method=method)
            if permuted < tight:
                return Mismatch(
                    "ged",
                    "permuted_upper_below_lower",
                    {
                        "pair": [i, j],
                        "method": method,
                        "permuted_upper": permuted,
                        "tight_lower": tight,
                    },
                )
    for a, b, c in itertools.combinations(tiny[:4], 3):
        direct = ged(a, c, method="exact")
        detour = ged(a, b, method="exact") + ged(b, c, method="exact")
        if direct > detour:
            return Mismatch(
                "ged",
                "triangle_inequality",
                {"direct": direct, "detour": detour},
            )
    return None


def scov_oracle(workload: Workload) -> Mismatch | None:
    """Maintained covers track fresh covers; insert-only covers grow.

    Checks (a) the memoisation staleness contract — a maintained plain
    oracle must agree with a fresh one after every ``apply_update`` —
    and (b) scov monotonicity: a pure-insertion batch can only enlarge
    each cover set (and hence ``set_scov``'s numerator).
    """
    views = list(workload.views())
    with use_covindex(False):
        maintained = CoverageOracle(views[0])
        previous = [
            maintained.cover(p) for p in workload.patterns
        ]
        for step, batch in enumerate(workload.batches):
            view = views[step + 1]
            pure_insert = not batch.removed and not (
                set(batch.added) & set(views[step])
            )
            maintained.apply_update(batch.added, batch.removed)
            fresh = CoverageOracle(view)
            current = []
            for i, pattern in enumerate(workload.patterns):
                got = maintained.cover(pattern)
                want = fresh.cover(pattern)
                if got != want:
                    return Mismatch(
                        "scov",
                        "stale_memo",
                        {
                            "view": step + 1,
                            "pattern": i,
                            "maintained": sorted(got),
                            "fresh": sorted(want),
                        },
                    )
                current.append(got)
                if pure_insert and not previous[i] <= got:
                    return Mismatch(
                        "scov",
                        "cover_shrank_on_insert",
                        {
                            "view": step + 1,
                            "pattern": i,
                            "lost": sorted(previous[i] - got),
                        },
                    )
            previous = current
    return None


def _snapshot_signature(snapshot) -> tuple:
    """Everything a reader can observe through a pinned snapshot."""
    return (
        snapshot.version,
        snapshot.database_size,
        snapshot.sample_size,
        snapshot.set_scov,
        tuple(
            (entry.pattern_id, tuple(sorted(entry.cover)), entry.scov)
            for entry in snapshot.patterns
        ),
    )


def serve_oracle(workload: Workload) -> Mismatch | None:
    """Published snapshots match a fresh oracle; pinned reads never drift.

    Replays the workload exactly as the serving layer does: one
    *maintained* CoverageOracle advances through the views via
    ``apply_update`` and every view publishes one snapshot into a
    :class:`~repro.serve.snapshot.SnapshotStore`, while a lease pinned
    at each version stays held across all later publishes.  Checks
    (a) each published snapshot's covers / scov / set_scov agree with a
    fresh per-view CoverageOracle, and (b) no pinned snapshot changes,
    however many rounds commit after the pin — the snapshot-isolation
    contract of ``docs/SERVING.md``.
    """
    store = SnapshotStore()
    views = list(workload.views())
    patterns = list(enumerate(workload.patterns))
    graphs = [pattern for _, pattern in patterns]
    with use_covindex(False):
        maintained = CoverageOracle(views[0])
        pinned: list[tuple] = []
        for step, view in enumerate(views):
            if step > 0:
                batch = workload.batches[step - 1]
                maintained.apply_update(batch.added, batch.removed)
            snapshot = store.publish(
                build_snapshot(
                    step + 1,
                    ((i, pattern, "fuzz") for i, pattern in patterns),
                    maintained,
                    database_size=len(view),
                )
            )
            fresh = CoverageOracle(view)
            for i, pattern in patterns:
                entry = snapshot.pattern(i)
                want = fresh.cover(pattern)
                if entry.cover != want:
                    return Mismatch(
                        "serve",
                        "snapshot_cover_vs_fresh",
                        {
                            "view": step,
                            "pattern": i,
                            "snapshot": sorted(entry.cover),
                            "fresh": sorted(want),
                        },
                    )
                if entry.scov != fresh.scov(pattern):
                    return Mismatch(
                        "serve",
                        "snapshot_scov_vs_fresh",
                        {"view": step, "pattern": i},
                    )
            if snapshot.set_scov != fresh.set_scov(graphs):
                return Mismatch(
                    "serve",
                    "snapshot_set_scov_vs_fresh",
                    {"view": step},
                )
            pinned.append((store.pin(), step, _snapshot_signature(snapshot)))
        for lease, step, signature in pinned:
            drifted = _snapshot_signature(lease.snapshot) != signature
            lag = lease.release()
            if drifted:
                return Mismatch(
                    "serve", "pinned_snapshot_drifted", {"view": step}
                )
            if lease.version != step + 1 or lag != len(views) - (step + 1):
                return Mismatch(
                    "serve",
                    "version_accounting",
                    {"view": step, "version": lease.version, "lag": lag},
                )
    return None


def store_oracle(workload: Workload) -> Mismatch | None:
    """SQLite store trajectory vs the in-memory store, byte for byte.

    Drives both :class:`~repro.store.base.GraphStore` backends through
    the same load + batch sequence and compares, after every step: id
    allocation, the applied-update records, every stored graph's
    canonical serialisation, the SQL-aggregate statistics, and the
    coverage index the SQLite backend reassembles from its persisted
    per-shard postings against a from-scratch build over the in-memory
    view.  Also checks the shared error taxonomy (missing-deletion
    batches fail identically and atomically) and that a close/reopen of
    the SQLite file preserves the trajectory (durability).
    """
    import shutil
    import tempfile

    from ..graph.database import BatchUpdate, DatabaseError, GraphDatabase
    from ..graph.io import graph_to_dict
    from ..store.sqlite import SQLiteStore

    def signature(store) -> tuple:
        ids = store.ids()
        return (
            len(store),
            store.next_graph_id(),
            ids,
            list(store),
            tuple(graph_to_dict(store[gid])["labels"] for gid in ids),
            tuple(tuple(graph_to_dict(store[gid])["edges"]) for gid in ids),
            store.total_vertices(),
            store.total_edges(),
            sorted(store.vertex_label_alphabet()),
            sorted(store.edge_label_document_frequency().items()),
        )

    tmp = tempfile.mkdtemp(prefix="repro-store-oracle-")
    sql = None
    try:
        path = f"{tmp}/store.db"
        sql = SQLiteStore(path)
        mem = GraphDatabase()
        for gid, graph in sorted(workload.graphs.items()):
            mem.reserve_through(gid)
            sql.reserve_through(gid)
            assigned = (mem.add(graph), sql.add(graph))
            if assigned != (gid, gid):
                return Mismatch(
                    "store",
                    "id_allocation",
                    {"expected": gid, "assigned": list(assigned)},
                )
        for step, batch in enumerate(workload.batches):
            # Mirror Workload.views(): removals of absent ids are
            # dropped, insertions arrive in sorted-id order.
            update = BatchUpdate.of(
                insertions=[batch.added[g] for g in sorted(batch.added)],
                deletions=[g for g in batch.removed if g in mem],
            )
            bogus = BatchUpdate.of(deletions=[mem.next_graph_id() + 99])
            errors = []
            for backend in (mem, sql):
                try:
                    backend.apply(bogus)
                    errors.append(None)
                except DatabaseError as exc:
                    errors.append(str(exc))
            if errors[0] != errors[1] or errors[0] is None:
                return Mismatch(
                    "store", "error_taxonomy", {"step": step, "errors": errors}
                )
            records = (mem.apply(update), sql.apply(update))
            if (
                records[0].inserted_ids != records[1].inserted_ids
                or records[0].deleted_ids != records[1].deleted_ids
            ):
                return Mismatch(
                    "store",
                    "applied_record",
                    {
                        "step": step,
                        "memory": [
                            records[0].inserted_ids,
                            records[0].deleted_ids,
                        ],
                        "sqlite": [
                            records[1].inserted_ids,
                            records[1].deleted_ids,
                        ],
                    },
                )
            if signature(mem) != signature(sql):
                return Mismatch(
                    "store", "state_divergence", {"step": step}
                )
            rebuilt = CoverageIndex.build(dict(mem.items()))
            if rebuilt != sql.coverage_index():
                return Mismatch(
                    "store", "persisted_postings_vs_rebuild", {"step": step}
                )
            # The persisted postings are substrate-independent ints:
            # a plain-int rebuild must reassemble the same index too.
            if rebuilt != CoverageIndex.build(
                dict(mem.items()), substrate="int"
            ):
                return Mismatch(
                    "store",
                    "substrate_rebuild_divergence",
                    {"step": step},
                )
        final = signature(sql)
        sql.close()
        sql = SQLiteStore(path)
        if signature(sql) != final:
            return Mismatch("store", "reopen_divergence", {})
    finally:
        if sql is not None:
            sql.close()
        shutil.rmtree(tmp, ignore_errors=True)
    return None


# ----------------------------------------------------------------------
# the registry
# ----------------------------------------------------------------------
ORACLES: dict[str, Oracle] = {
    oracle.name: oracle
    for oracle in (
        Oracle(
            "vf2",
            "VF2 (seeded and unseeded) vs brute-force monomorphism "
            "enumeration on small graphs",
            vf2_oracle,
            {
                "num_graphs": 3,
                "max_graph_vertices": 7,
                "num_patterns": 3,
                "max_pattern_edges": 3,
                "max_pattern_vertices": 4,
                "num_batches": 1,
            },
        ),
        Oracle(
            "covindex",
            "coverage engine (filter + delta verification) on both "
            "bitset substrates vs a fresh full-scan CoverageOracle at "
            "every view, with cross-substrate snapshot equality",
            covindex_oracle,
            {"num_graphs": 5, "num_batches": 2},
        ),
        Oracle(
            "fragments",
            "fragment network on vs off verdicts per view, drained "
            "fragment views vs direct VF2 sweeps, and the "
            "covindex.frag_* invariant guards",
            fragments_oracle,
            {
                "num_graphs": 5,
                "num_batches": 2,
                "num_patterns": 4,
                "max_pattern_edges": 6,
            },
        ),
        Oracle(
            "cache",
            "canonical-form caches on (cold and warm) vs off",
            cache_oracle,
            {"num_graphs": 4, "num_batches": 2},
        ),
        Oracle(
            "parallel",
            "2- and 4-worker kernel pools vs the serial loop, with the "
            "coverage engine off (host-shipping kernels) and on "
            "(persistent view workers)",
            parallel_oracle,
            {"num_graphs": 4, "num_batches": 1},
        ),
        Oracle(
            "index",
            "incremental FCT/FCT-IFE/covindex maintenance vs rebuild "
            "(bounded-deletion regime)",
            index_oracle,
            {
                "num_graphs": 5,
                "max_graph_vertices": 8,
                "num_batches": 2,
                "max_deletion_fraction": 0.3,
            },
        ),
        Oracle(
            "canonical",
            "canonical certificates and cache keys are vertex-ID "
            "permutation invariant",
            canonical_oracle,
            {"num_graphs": 4, "num_batches": 1},
        ),
        Oracle(
            "ged",
            "GED bound sandwich, identity, permutation invariance and "
            "exact triangle inequality on tiny graphs",
            ged_oracle,
            {
                "num_graphs": 3,
                "max_graph_vertices": 5,
                "num_patterns": 3,
                "max_pattern_edges": 3,
                "max_pattern_vertices": 4,
                "num_batches": 0,
            },
        ),
        Oracle(
            "scov",
            "maintained oracle vs fresh oracle after updates; covers "
            "monotone under pure insertion",
            scov_oracle,
            {"insert_only": True, "num_batches": 3},
        ),
        Oracle(
            "serve",
            "published snapshots vs a fresh per-view oracle; pinned "
            "snapshots never drift across later publishes",
            serve_oracle,
            {"num_graphs": 4, "num_batches": 2},
        ),
        Oracle(
            "store",
            "SQLite out-of-core store vs the in-memory store: identical "
            "id allocation, batch results, stats, persisted postings "
            "(reassembled on either substrate) and reopen durability",
            store_oracle,
            {"num_graphs": 5, "num_batches": 3},
        ),
    )
}


def get_oracle(name: str) -> Oracle:
    try:
        return ORACLES[name]
    except KeyError:
        raise ValueError(
            f"unknown oracle {name!r}; choose from {sorted(ORACLES)}"
        ) from None


def oracle_names() -> list[str]:
    return sorted(ORACLES)


__all__ = [
    "EXACT_GED_MAX_VERTICES",
    "FCT_SUP_MIN",
    "ORACLES",
    "Oracle",
    "get_oracle",
    "oracle_names",
]
