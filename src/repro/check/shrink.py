"""Greedy workload minimisation (delta-debugging style).

Given a failing :class:`~repro.check.workload.Workload` and a predicate
("does this workload still trigger the *same* mismatch signature?"),
:func:`shrink` applies one-step reductions in decreasing order of
impact — drop a graph, drop a batch, drop one batch op, drop a pattern,
drop a vertex, remove an edge, contract an edge, collapse the label
alphabet towards two letters — keeping any reduction the predicate
accepts, and loops to a fixpoint.  The result is a *1-minimal* repro:
no single remaining reduction preserves the failure.

Every accepted reduction bumps the ``check.shrink_steps`` counter;
predicate evaluations are capped by ``max_evals`` so a slow oracle
cannot stall the fuzzer indefinitely (the best workload found so far is
returned on cap).
"""

from __future__ import annotations

from collections.abc import Callable, Iterator

from ..graph.labeled_graph import LabeledGraph
from ..obs import get_registry
from .workload import Workload, WorkloadBatch

#: Labels the relabelling pass collapses the alphabet towards.
SHRINK_ALPHABET = ("A", "B")


# ----------------------------------------------------------------------
# graph-level edits (pure; vertices renumbered to 0..n-1, sorted order)
# ----------------------------------------------------------------------
def _parts(graph: LabeledGraph) -> tuple[list, list]:
    order = sorted(graph.vertices(), key=repr)
    labels = [(v, graph.label(v)) for v in order]
    position = {v: i for i, v in enumerate(order)}
    edges = sorted(
        tuple(sorted((position[u], position[v]))) for u, v in graph.edges()
    )
    return [(position[v], label) for v, label in labels], edges


def _assemble(labels: list, edges: list, name: str | None) -> LabeledGraph:
    keep = sorted(v for v, _ in labels)
    renumber = {v: i for i, v in enumerate(keep)}
    graph = LabeledGraph(name=name)
    for v, label in sorted(labels):
        graph.add_vertex(renumber[v], label)
    seen = set()
    for u, v in edges:
        edge = tuple(sorted((renumber[u], renumber[v])))
        if edge[0] != edge[1] and edge not in seen:
            seen.add(edge)
            graph.add_edge(*edge)
    return graph


def _graph_reductions(graph: LabeledGraph) -> Iterator[LabeledGraph]:
    """One-step structural reductions of a single graph, biggest first."""
    labels, edges = _parts(graph)
    if len(labels) <= 1:
        return
    # Drop one vertex (with its incident edges).
    for v, _ in labels:
        yield _assemble(
            [(w, lab) for w, lab in labels if w != v],
            [e for e in edges if v not in e],
            graph.name,
        )
    # Contract one edge (merge the higher endpoint into the lower).
    for u, v in edges:
        yield _assemble(
            [(w, lab) for w, lab in labels if w != v],
            [
                tuple(sorted((u if a == v else a, u if b == v else b)))
                for a, b in edges
                if (a, b) != (u, v)
            ],
            graph.name,
        )
    # Remove one edge (endpoints survive, possibly isolated).
    for i in range(len(edges)):
        yield _assemble(labels, edges[:i] + edges[i + 1 :], graph.name)


def _relabeled(graph: LabeledGraph, mapping: dict[str, str]) -> LabeledGraph:
    labels, edges = _parts(graph)
    return _assemble(
        [(v, mapping.get(label, label)) for v, label in labels],
        edges,
        graph.name,
    )


# ----------------------------------------------------------------------
# workload-level reductions
# ----------------------------------------------------------------------
def _replace_graph(
    workload: Workload, site: tuple, graph: LabeledGraph
) -> Workload:
    if site[0] == "initial":
        graphs = dict(workload.graphs)
        graphs[site[1]] = graph
        return Workload(graphs, workload.patterns, workload.batches)
    if site[0] == "batch":
        batches = list(workload.batches)
        batch = batches[site[1]]
        added = dict(batch.added)
        added[site[2]] = graph
        batches[site[1]] = WorkloadBatch(added, batch.removed)
        return Workload(workload.graphs, workload.patterns, tuple(batches))
    patterns = list(workload.patterns)
    patterns[site[1]] = graph
    return Workload(workload.graphs, tuple(patterns), workload.batches)


def _graph_sites(workload: Workload) -> list[tuple[tuple, LabeledGraph]]:
    sites: list[tuple[tuple, LabeledGraph]] = [
        (("initial", gid), graph)
        for gid, graph in sorted(workload.graphs.items())
    ]
    for step, batch in enumerate(workload.batches):
        sites.extend(
            (("batch", step, gid), graph)
            for gid, graph in sorted(batch.added.items())
        )
    sites.extend(
        (("pattern", i), pattern)
        for i, pattern in enumerate(workload.patterns)
    )
    return sites


def _reductions(workload: Workload) -> Iterator[Workload]:
    """All one-step workload reductions, in decreasing order of impact."""
    # 1. Drop one initial graph.
    for gid in sorted(workload.graphs):
        graphs = {
            g: graph for g, graph in workload.graphs.items() if g != gid
        }
        yield Workload(graphs, workload.patterns, workload.batches)
    # 2. Drop one whole batch.
    for step in range(len(workload.batches)):
        yield Workload(
            workload.graphs,
            workload.patterns,
            workload.batches[:step] + workload.batches[step + 1 :],
        )
    # 3. Drop one batch op (one insertion or one removal).
    for step, batch in enumerate(workload.batches):
        for gid in sorted(batch.added):
            added = {g: gr for g, gr in batch.added.items() if g != gid}
            batches = list(workload.batches)
            batches[step] = WorkloadBatch(added, batch.removed)
            yield Workload(
                workload.graphs, workload.patterns, tuple(batches)
            )
        for gid in batch.removed:
            removed = tuple(g for g in batch.removed if g != gid)
            batches = list(workload.batches)
            batches[step] = WorkloadBatch(batch.added, removed)
            yield Workload(
                workload.graphs, workload.patterns, tuple(batches)
            )
    # 4. Drop one pattern.
    for i in range(len(workload.patterns)):
        yield Workload(
            workload.graphs,
            workload.patterns[:i] + workload.patterns[i + 1 :],
            workload.batches,
        )
    # 5–7. Shrink one graph in place (vertex drop / contraction / edge
    # removal, in that order inside _graph_reductions).
    for site, graph in _graph_sites(workload):
        for reduced in _graph_reductions(graph):
            yield _replace_graph(workload, site, reduced)
    # 8. Collapse the label alphabet towards {A, B}.
    alphabet = sorted(
        {
            label
            for _, graph in _graph_sites(workload)
            for label in graph.vertex_label_multiset()
        }
    )
    for label in alphabet:
        for target in SHRINK_ALPHABET:
            if label == target:
                continue
            mapping = {label: target}
            candidate = workload
            for site, graph in _graph_sites(workload):
                candidate = _replace_graph(
                    candidate, site, _relabeled(graph, mapping)
                )
            yield candidate


def shrink(
    workload: Workload,
    predicate: Callable[[Workload], bool],
    max_evals: int = 2000,
) -> Workload:
    """Greedily minimise *workload* while *predicate* stays true.

    *predicate* must be true for *workload* itself (the caller observed
    the failure there); it is re-run on every candidate reduction.
    Returns the smallest accepted workload — 1-minimal if the eval
    budget was not exhausted.
    """
    registry = get_registry()
    current = workload
    evals = 0
    improved = True
    while improved and evals < max_evals:
        improved = False
        for candidate in _reductions(current):
            if candidate.size() >= current.size():
                continue
            evals += 1
            if predicate(candidate):
                registry.counter("check.shrink_steps").add(1)
                current = candidate
                improved = True
                break
            if evals >= max_evals:
                break
    return current


__all__ = ["SHRINK_ALPHABET", "shrink"]
