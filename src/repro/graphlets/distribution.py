"""Graphlet frequency distributions (GFD) and distances between them.

A graph database is viewed as one large network of disconnected
components; its GFD is the relative frequency of each atlas graphlet over
all data graphs (paper, Section 3.4).  MIDAS compares the GFD of ``D``
and ``D ⊕ ΔD`` with the Euclidean distance and classifies the batch as a
*major* modification when the distance reaches the evolution ratio
threshold ε.  The paper's technical report states the choice of distance
has little impact; :data:`DISTANCE_MEASURES` provides alternatives for
the corresponding ablation benchmark.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

import numpy as np

from ..cache.stores import caching_enabled, get_caches
from ..graph.labeled_graph import LabeledGraph
from .atlas import GRAPHLET_NAMES
from .counting import count_graphlets


class GraphletDistribution:
    """Aggregated, incrementally-maintainable graphlet counts.

    Per-graph count vectors are cached by graph ID so that applying a
    batch update costs one :func:`count_graphlets` call per *modified*
    graph only — the surviving graphs' contributions are reused.
    """

    def __init__(self, graphs: Mapping[int, LabeledGraph] | None = None) -> None:
        self._per_graph: dict[int, np.ndarray] = {}
        self._total = np.zeros(len(GRAPHLET_NAMES), dtype=np.float64)
        if graphs:
            for graph_id, graph in graphs.items():
                self.add(graph_id, graph)

    # ------------------------------------------------------------------
    def add(self, graph_id: int, graph: LabeledGraph) -> None:
        if graph_id in self._per_graph:
            raise ValueError(f"graph id {graph_id} already counted")
        caches = get_caches() if caching_enabled() else None
        counts = caches.graphlets.get(graph) if caches is not None else None
        if counts is None:
            counts = count_graphlets(graph)
            if caches is not None:
                caches.graphlets.put(graph, counts, graph_id=graph_id)
        elif caches is not None:
            caches.graphlets.bind(graph_id, graph)
        self._per_graph[graph_id] = counts
        self._total += counts

    def remove(self, graph_id: int) -> None:
        try:
            counts = self._per_graph.pop(graph_id)
        except KeyError:
            raise ValueError(f"graph id {graph_id} not counted") from None
        self._total -= counts

    def copy(self) -> "GraphletDistribution":
        clone = GraphletDistribution()
        clone._per_graph = dict(self._per_graph)
        clone._total = self._total.copy()
        return clone

    # ------------------------------------------------------------------
    @property
    def num_graphs(self) -> int:
        return len(self._per_graph)

    def totals(self) -> np.ndarray:
        """Raw aggregated counts in atlas order."""
        return self._total.copy()

    def frequencies(self) -> np.ndarray:
        """Normalised frequencies ψ (sums to 1; zero vector when empty)."""
        total = self._total.sum()
        if total <= 0:
            return np.zeros_like(self._total)
        return self._total / total

    def as_dict(self) -> dict[str, float]:
        return dict(zip(GRAPHLET_NAMES, self.frequencies()))


def database_distribution(
    graphs: Mapping[int, LabeledGraph]
) -> GraphletDistribution:
    """GFD of a database snapshot."""
    return GraphletDistribution(graphs)


# ----------------------------------------------------------------------
# distances between distributions
# ----------------------------------------------------------------------
def euclidean_distance(psi_a: np.ndarray, psi_b: np.ndarray) -> float:
    """The paper's default ``dist(ψ_D, ψ_{D⊕ΔD})``."""
    return float(np.linalg.norm(psi_a - psi_b))


def manhattan_distance(psi_a: np.ndarray, psi_b: np.ndarray) -> float:
    return float(np.abs(psi_a - psi_b).sum())


def cosine_distance(psi_a: np.ndarray, psi_b: np.ndarray) -> float:
    norm_a = np.linalg.norm(psi_a)
    norm_b = np.linalg.norm(psi_b)
    if norm_a == 0 or norm_b == 0:
        return 0.0 if norm_a == norm_b else 1.0
    return float(1.0 - np.dot(psi_a, psi_b) / (norm_a * norm_b))


def hellinger_distance(psi_a: np.ndarray, psi_b: np.ndarray) -> float:
    return float(
        np.linalg.norm(np.sqrt(np.clip(psi_a, 0, None)) - np.sqrt(np.clip(psi_b, 0, None)))
        / np.sqrt(2.0)
    )


DISTANCE_MEASURES = {
    "euclidean": euclidean_distance,
    "manhattan": manhattan_distance,
    "cosine": cosine_distance,
    "hellinger": hellinger_distance,
}


def distribution_distance(
    first: GraphletDistribution | np.ndarray | Iterable[float],
    second: GraphletDistribution | np.ndarray | Iterable[float],
    measure: str = "euclidean",
) -> float:
    """Distance between two GFDs under *measure*."""
    try:
        implementation = DISTANCE_MEASURES[measure]
    except KeyError:
        raise ValueError(
            f"unknown measure {measure!r}; choose from {sorted(DISTANCE_MEASURES)}"
        ) from None
    psi_a = (
        first.frequencies()
        if isinstance(first, GraphletDistribution)
        else np.asarray(list(first), dtype=np.float64)
    )
    psi_b = (
        second.frequencies()
        if isinstance(second, GraphletDistribution)
        else np.asarray(list(second), dtype=np.float64)
    )
    return implementation(psi_a, psi_b)
