"""Exact induced graphlet counting via combinatorial formulas.

Naive enumeration of 4-vertex subsets is O(|V|⁴) per graph — too slow for
databases of thousands of graphs, even small ones.  This module counts
every induced graphlet of the atlas exactly with closed-form corrections
between non-induced ("subgraph") counts and induced counts, the standard
technique from the graphlet-counting literature (ORCA-style):

* triangles ``T`` from common-neighbour counts per edge,
* non-induced stars / paths from degree combinatorics,
* 4-node counts ordered so that denser graphlets (K4, diamond) are
  computed first and subtracted out of the sparser ones.

All results were cross-validated against brute-force enumeration (see
``tests/test_graphlets.py``).
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from ..graph.labeled_graph import LabeledGraph
from .atlas import GRAPHLET_NAMES


def _choose2(n: int) -> int:
    return n * (n - 1) // 2


def _choose3(n: int) -> int:
    return n * (n - 1) * (n - 2) // 6


def count_graphlets(graph: LabeledGraph) -> np.ndarray:
    """Induced counts of the nine atlas graphlets, in atlas order."""
    vertices = list(graph.vertices())
    adjacency = {v: graph.neighbors(v) for v in vertices}
    degree = {v: len(adjacency[v]) for v in vertices}
    edges = list(graph.edges())
    num_edges = len(edges)

    # --- 3-node graphlets -------------------------------------------------
    # Common neighbour count per edge drives triangles and 4-node counts.
    common: dict[tuple, int] = {}
    triangle_triples: int = 0
    for u, v in edges:
        c = len(adjacency[u] & adjacency[v])
        common[(u, v)] = c
        triangle_triples += c
    triangles = triangle_triples // 3
    paths_3 = sum(_choose2(degree[v]) for v in vertices) - 3 * triangles

    # --- dense 4-node graphlets ------------------------------------------
    # K4: for each edge, pairs of adjacent common neighbours.
    k4_incidences = 0
    for u, v in edges:
        shared = adjacency[u] & adjacency[v]
        for w, x in combinations(sorted(shared, key=repr), 2):
            if x in adjacency[w]:
                k4_incidences += 1
    cliques_4 = k4_incidences // 6

    # Diamond: pairs of triangles sharing an edge, minus the K4 cases.
    shared_pairs = sum(_choose2(c) for c in common.values())
    diamonds = shared_pairs - 6 * cliques_4

    # Non-induced 4-cycles via co-degree of all vertex pairs.
    codegree_pairs = 0
    for u, v in combinations(vertices, 2):
        c = len(adjacency[u] & adjacency[v])
        codegree_pairs += _choose2(c)
    cycles_4_all = codegree_pairs // 2
    cycles_4 = cycles_4_all - diamonds - 3 * cliques_4

    # Tailed triangles: triangle degree-excess, minus dense corrections.
    tail_incidences = 0
    for u, v in edges:
        for w in adjacency[u] & adjacency[v]:
            # triangle (u, v, w) counted once per edge → three times total
            tail_incidences += degree[u] + degree[v] + degree[w] - 6
    tailed_all = tail_incidences // 3
    tailed_triangles = tailed_all - 4 * diamonds - 12 * cliques_4

    # Claws: central-vertex combinatorics minus every denser shape that
    # contains a degree-3 vertex within the 4-set.
    claws_all = sum(_choose3(degree[v]) for v in vertices)
    stars_3 = (
        claws_all - tailed_triangles - 2 * diamonds - 4 * cliques_4
    )

    # Paths on 4 vertices: central-edge combinatorics with corrections.
    p4_all = 0
    for u, v in edges:
        p4_all += (degree[u] - 1) * (degree[v] - 1)
    p4_all -= 3 * triangles
    paths_4 = (
        p4_all
        - 2 * tailed_triangles
        - 4 * cycles_4
        - 6 * diamonds
        - 12 * cliques_4
    )

    counts = np.array(
        [
            num_edges,
            paths_3,
            triangles,
            paths_4,
            stars_3,
            cycles_4,
            tailed_triangles,
            diamonds,
            cliques_4,
        ],
        dtype=np.float64,
    )
    return counts


def count_graphlets_bruteforce(graph: LabeledGraph) -> np.ndarray:
    """Reference implementation by explicit subset enumeration.

    Exponentially slower than :func:`count_graphlets`; retained for
    validation in tests.
    """
    vertices = sorted(graph.vertices(), key=repr)
    counts = dict.fromkeys(GRAPHLET_NAMES, 0)
    counts["edge"] = graph.num_edges

    def induced_edge_count(subset: tuple) -> int:
        return sum(
            1 for a, b in combinations(subset, 2) if graph.has_edge(a, b)
        )

    for triple in combinations(vertices, 3):
        edges_in = induced_edge_count(triple)
        sub = graph.subgraph(triple)
        if not sub.is_connected():
            continue
        if edges_in == 2:
            counts["path_3"] += 1
        elif edges_in == 3:
            counts["triangle"] += 1
    for quad in combinations(vertices, 4):
        sub = graph.subgraph(quad)
        if not sub.is_connected():
            continue
        edges_in = sub.num_edges
        degrees = sorted(sub.degree(v) for v in quad)
        if edges_in == 3:
            counts["star_3" if degrees == [1, 1, 1, 3] else "path_4"] += 1
        elif edges_in == 4:
            counts["cycle_4" if degrees == [2, 2, 2, 2] else "tailed_triangle"] += 1
        elif edges_in == 5:
            counts["diamond"] += 1
        elif edges_in == 6:
            counts["clique_4"] += 1
    return np.array([counts[name] for name in GRAPHLET_NAMES], dtype=np.float64)
