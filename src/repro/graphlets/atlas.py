"""The graphlet atlas: connected 2-, 3- and 4-node graphlets.

MIDAS detects whether a batch update is a *major* or *minor* modification
by comparing graphlet frequency distributions before and after the update
(paper, Section 3.4).  Graphlets are the small connected unlabelled
network patterns of Pržulj's catalogue; the relevant ones here are the
nine connected graphlets on up to four nodes:

====  ===========================  =========
 id    name                         vertices
====  ===========================  =========
 g0    edge                         2
 g1    path_3 (P3)                  3
 g2    triangle                     3
 g3    path_4 (P4)                  4
 g4    star_3 (claw / S3)           4
 g5    cycle_4 (C4)                 4
 g6    tailed_triangle              4
 g7    diamond (K4 − e)             4
 g8    clique_4 (K4)                4
====  ===========================  =========

Lemma 3.5's observation — every canned pattern is built from graphlets
and edges — is what makes shifts in this distribution a proxy for pattern
staleness.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..graph.labeled_graph import LabeledGraph

#: Stable ordering of graphlet identifiers; frequency vectors follow it.
GRAPHLET_NAMES: tuple[str, ...] = (
    "edge",
    "path_3",
    "triangle",
    "path_4",
    "star_3",
    "cycle_4",
    "tailed_triangle",
    "diamond",
    "clique_4",
)

_EDGE_SETS: dict[str, tuple[tuple[int, int], ...]] = {
    "edge": ((0, 1),),
    "path_3": ((0, 1), (1, 2)),
    "triangle": ((0, 1), (1, 2), (0, 2)),
    "path_4": ((0, 1), (1, 2), (2, 3)),
    "star_3": ((0, 1), (0, 2), (0, 3)),
    "cycle_4": ((0, 1), (1, 2), (2, 3), (0, 3)),
    "tailed_triangle": ((0, 1), (1, 2), (0, 2), (0, 3)),
    "diamond": ((0, 1), (1, 2), (0, 2), (0, 3), (1, 3)),
    "clique_4": ((0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)),
}


@dataclass(frozen=True)
class Graphlet:
    """One entry of the atlas."""

    index: int
    name: str
    num_vertices: int
    edges: tuple[tuple[int, int], ...]

    def as_graph(self, label: str = "*") -> LabeledGraph:
        """Materialise the graphlet as a uniformly-labelled graph."""
        labels = {v: label for v in range(self.num_vertices)}
        return LabeledGraph.from_edges(labels, self.edges)


def _build_atlas() -> tuple[Graphlet, ...]:
    atlas = []
    for index, name in enumerate(GRAPHLET_NAMES):
        edges = _EDGE_SETS[name]
        num_vertices = max(max(e) for e in edges) + 1
        atlas.append(Graphlet(index, name, num_vertices, edges))
    return tuple(atlas)


ATLAS: tuple[Graphlet, ...] = _build_atlas()


def graphlet_by_name(name: str) -> Graphlet:
    for graphlet in ATLAS:
        if graphlet.name == name:
            return graphlet
    raise KeyError(f"unknown graphlet {name!r}")
