"""Graphlet substrate: atlas, exact counting, frequency distributions."""

from .atlas import ATLAS, GRAPHLET_NAMES, Graphlet, graphlet_by_name
from .counting import count_graphlets, count_graphlets_bruteforce
from .distribution import (
    DISTANCE_MEASURES,
    GraphletDistribution,
    database_distribution,
    distribution_distance,
)

__all__ = [
    "ATLAS",
    "DISTANCE_MEASURES",
    "GRAPHLET_NAMES",
    "Graphlet",
    "GraphletDistribution",
    "count_graphlets",
    "count_graphlets_bruteforce",
    "database_distribution",
    "distribution_distance",
    "graphlet_by_name",
]
