"""Visual query formulation planning.

This module computes the *minimum number of formulation steps* for a
query under the two construction modes of the paper:

* **edge-at-a-time** — every vertex and every edge is one atomic action:
  ``steps = |V_Q| + |E_Q|``;
* **pattern-at-a-time** — a canned pattern contributes all its vertices
  and edges in a single drag action; remaining vertices/edges are added
  one at a time, and (in the user-study variant) extra pattern elements
  may be deleted at one step each.

The planner is the greedy maximiser used by the automated study
(Section 7.1): repeatedly place the largest pattern embeddable in the
*uncovered* part of the query, with embeddings pairwise vertex-disjoint
(the paper's simplifying assumption 2).  The user-study variant
(Section 7.2) relaxes this by allowing bounded pattern *editing*:
a pattern may be placed after deleting up to ``max_edits`` pendant
vertices, at one deletion step per removed vertex+edge.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..graph.labeled_graph import LabeledGraph, edge_key
from ..isomorphism.vf2 import VF2Matcher


@dataclass
class PlacedPattern:
    """One pattern use within a formulation plan."""

    pattern_index: int
    vertices_covered: int
    edges_covered: int
    deletions: int = 0
    #: The (possibly edited) pattern variant actually placed.
    variant: LabeledGraph | None = None
    #: Embedding variant-vertex → query-vertex for this placement.
    embedding: dict | None = None


@dataclass
class FormulationPlan:
    """A full construction plan for one query."""

    steps: int
    placed: list[PlacedPattern] = field(default_factory=list)
    vertices_added: int = 0
    edges_added: int = 0
    #: Query vertices not covered by any placement (added one at a time).
    remaining_vertices: list = field(default_factory=list)
    #: Query edges not covered by any placement (added one at a time).
    remaining_edges: list = field(default_factory=list)

    @property
    def used_patterns(self) -> bool:
        return bool(self.placed)

    @property
    def num_pattern_uses(self) -> int:
        return len(self.placed)

    @property
    def num_deletions(self) -> int:
        return sum(p.deletions for p in self.placed)


def edge_at_a_time_steps(query: LabeledGraph) -> int:
    """Steps to build *query* one vertex / one edge at a time."""
    return query.num_vertices + query.num_edges


def _pattern_variants(
    pattern: LabeledGraph, max_edits: int
) -> list[tuple[LabeledGraph, int]]:
    """The pattern plus its pendant-deletion edits, largest first.

    Each variant removes up to *max_edits* degree-1 vertices (with their
    edges); the edit count is the number of deletion steps incurred.
    """
    from ..graph.canonical import canonical_key

    variants: list[tuple[LabeledGraph, int]] = [(pattern, 0)]
    frontier = [(pattern, 0)]
    seen = {canonical_key(pattern)}
    while frontier:
        current, edits = frontier.pop()
        if edits >= max_edits:
            continue
        for vertex in sorted(current.vertices(), key=repr):
            if current.degree(vertex) != 1 or current.num_vertices <= 3:
                continue
            trimmed = current.copy()
            trimmed.remove_vertex(vertex)
            if not trimmed.is_connected():
                continue
            fingerprint = canonical_key(trimmed)
            if fingerprint in seen:
                continue
            seen.add(fingerprint)
            variants.append((trimmed, edits + 1))
            frontier.append((trimmed, edits + 1))
    variants.sort(key=lambda item: (-item[0].num_edges, item[1]))
    return variants


def _disjoint_embedding(
    query: LabeledGraph,
    pattern: LabeledGraph,
    used_vertices: set,
) -> dict | None:
    """An embedding of *pattern* into *query* avoiding *used_vertices*."""
    available = set(query.vertices()) - used_vertices
    if pattern.num_vertices > len(available):
        return None
    host = query.subgraph(available)
    matcher = VF2Matcher(pattern, host)
    for assignment in matcher.matches():
        return assignment
    return None


def plan_formulation(
    query: LabeledGraph,
    patterns: list[LabeledGraph],
    max_edits: int = 0,
) -> FormulationPlan:
    """Greedy minimum-step construction plan for *query*.

    With ``max_edits=0`` this is the automated study's exact-containment
    planner; positive ``max_edits`` enables the user-study behaviour of
    dragging a pattern and deleting up to that many pendant vertices.
    """
    placed: list[PlacedPattern] = []
    used_vertices: set = set()
    covered_edges: set = set()
    # Try patterns (and their edit variants) largest-first.
    queue: list[tuple[LabeledGraph, int, int]] = []
    for index, pattern in enumerate(patterns):
        for variant, edits in _pattern_variants(pattern, max_edits):
            if variant.num_edges >= 2:
                queue.append((variant, edits, index))
    queue.sort(key=lambda item: (-(item[0].num_edges - item[1]), item[1]))

    progress = True
    while progress:
        progress = False
        for variant, edits, index in queue:
            # Usefulness guard: a placement must beat building the same
            # vertices/edges atomically (1 drag + deletions < |V|+|E|).
            if 1 + edits >= variant.num_vertices + variant.num_edges:
                continue
            assignment = _disjoint_embedding(
                query, variant, used_vertices
            )
            if assignment is None:
                continue
            mapped = set(assignment.values())
            used_vertices |= mapped
            for u, v in variant.edges():
                covered_edges.add(edge_key(assignment[u], assignment[v]))
            placed.append(
                PlacedPattern(
                    pattern_index=index,
                    vertices_covered=variant.num_vertices,
                    edges_covered=variant.num_edges,
                    deletions=edits,
                    variant=variant,
                    embedding=dict(assignment),
                )
            )
            progress = True
            break

    remaining_vertices = sorted(
        (v for v in query.vertices() if v not in used_vertices), key=repr
    )
    remaining_edges = sorted(
        (e for e in query.edges() if edge_key(*e) not in covered_edges),
        key=repr,
    )
    steps = (
        len(placed)
        + sum(p.deletions for p in placed)
        + len(remaining_vertices)
        + len(remaining_edges)
    )
    return FormulationPlan(
        steps=steps,
        placed=placed,
        vertices_added=len(remaining_vertices),
        edges_added=len(remaining_edges),
        remaining_vertices=remaining_vertices,
        remaining_edges=remaining_edges,
    )


def reduction_ratio(steps_baseline: int, steps_subject: int) -> float:
    """``μ = (step_X − step_subject) / step_X`` (Section 7.1).

    Positive μ means the subject needed fewer steps than baseline X.
    """
    if steps_baseline <= 0:
        return 0.0
    return (steps_baseline - steps_subject) / steps_baseline
