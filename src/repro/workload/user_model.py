"""A simulated user of the visual query interface.

The paper's user study (Section 7.2) measures, for human participants,
the query formulation time (QFT), the number of steps and the visual
mapping time (VMT — time spent browsing the pattern panel before picking
a pattern).  Humans are not available to this reproduction, so this
module substitutes a latency model layered over the exact step planner
of :mod:`repro.workload.formulation` (see DESIGN.md, substitution table):

* the *step counts* are computed exactly by the planner with pattern
  editing enabled (users may delete pattern elements, Section 7.2);
* each atomic action draws a seeded lognormal latency whose medians are
  calibrated to the paper's worked example (Example 1.1: 41
  edge-at-a-time steps ≈ 145 s → ≈3.5 s/step; 20 pattern-at-a-time steps
  ≈ 102 s → ≈5.1 s/step including pattern search);
* VMT accrues per pattern use: the user scans on average half the γ
  displayed patterns before recognising the one they need.

Because latencies are per-action noise around the planner's exact step
counts, QFT/steps/VMT inherit the comparative shape of the figures —
which is what the reproduction targets.
"""

from __future__ import annotations

import math
import random
import zlib
from dataclasses import dataclass, field

from ..graph.labeled_graph import LabeledGraph
from .formulation import FormulationPlan, plan_formulation


@dataclass(frozen=True)
class UserProfile:
    """Median per-action latencies in seconds."""

    vertex_add: float = 2.2
    edge_add: float = 3.2
    deletion: float = 2.0
    pattern_drag: float = 2.6
    #: Seconds spent evaluating one displayed pattern while browsing.
    pattern_scan: float = 0.45
    #: Lognormal sigma of per-action noise (0 disables noise).
    noise_sigma: float = 0.25


@dataclass
class FormulationOutcome:
    """One simulated query formulation."""

    plan: FormulationPlan
    qft_seconds: float
    vmt_seconds: float

    @property
    def steps(self) -> int:
        return self.plan.steps


@dataclass
class SimulatedUser:
    """Drives the interface according to a :class:`UserProfile`."""

    profile: UserProfile = field(default_factory=UserProfile)
    seed: int = 0
    max_edits: int = 2

    def _rng_for(self, query: LabeledGraph, salt: int) -> random.Random:
        # zlib.crc32 is stable across processes (str hashing is not).
        token = f"{self.seed}|{query.name}|{salt}".encode()
        return random.Random(zlib.crc32(token))

    def _latency(self, median: float, rng: random.Random) -> float:
        sigma = self.profile.noise_sigma
        if sigma <= 0:
            return median
        return median * math.exp(rng.gauss(0.0, sigma))

    # ------------------------------------------------------------------
    def formulate(
        self,
        query: LabeledGraph,
        patterns: list[LabeledGraph],
        trial: int = 0,
    ) -> FormulationOutcome:
        """Simulate constructing *query* with *patterns* displayed."""
        rng = self._rng_for(query, trial)
        plan = plan_formulation(query, patterns, max_edits=self.max_edits)
        profile = self.profile
        qft = 0.0
        vmt = 0.0
        gamma = max(len(patterns), 1)
        for placement in plan.placed:
            # Browsing: scan about half the panel before recognising the
            # pattern (uniform position of the target pattern).
            scanned = rng.randint(1, gamma)
            browse = sum(
                self._latency(profile.pattern_scan, rng)
                for _ in range(scanned)
            )
            vmt += browse
            qft += browse
            qft += self._latency(profile.pattern_drag, rng)
            for _ in range(placement.deletions):
                qft += self._latency(profile.deletion, rng)
        for _ in range(plan.vertices_added):
            qft += self._latency(profile.vertex_add, rng)
        for _ in range(plan.edges_added):
            qft += self._latency(profile.edge_add, rng)
        return FormulationOutcome(plan=plan, qft_seconds=qft, vmt_seconds=vmt)

    def formulate_edge_at_a_time(
        self, query: LabeledGraph, trial: int = 0
    ) -> FormulationOutcome:
        """The no-pattern control: pure vertex/edge construction."""
        rng = self._rng_for(query, trial + 1_000_003)
        profile = self.profile
        qft = 0.0
        for _ in range(query.num_vertices):
            qft += self._latency(profile.vertex_add, rng)
        for _ in range(query.num_edges):
            qft += self._latency(profile.edge_add, rng)
        plan = FormulationPlan(
            steps=query.num_vertices + query.num_edges,
            placed=[],
            vertices_added=query.num_vertices,
            edges_added=query.num_edges,
        )
        return FormulationOutcome(plan=plan, qft_seconds=qft, vmt_seconds=0.0)


def panel_average(
    outcomes: list[FormulationOutcome],
) -> dict[str, float]:
    """Average QFT / steps / VMT over a set of formulations."""
    if not outcomes:
        return {"qft": 0.0, "steps": 0.0, "vmt": 0.0}
    return {
        "qft": sum(o.qft_seconds for o in outcomes) / len(outcomes),
        "steps": sum(o.steps for o in outcomes) / len(outcomes),
        "vmt": sum(o.vmt_seconds for o in outcomes) / len(outcomes),
    }
