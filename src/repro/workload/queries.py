"""Subgraph query workloads.

The automated study evaluates pattern sets on query sets of random
connected subgraphs drawn from the data graphs (paper, Section 7.1):
1000 queries of sizes 4–40, *balanced* so that when a batch inserted
graphs, half the queries come from Δ⁺ and half from the surviving
database — stale pattern sets should visibly struggle on the Δ⁺ half.
The user study (Section 7.2) uses smaller query sets with three mixes
(all-old, mixed, all-new), reproduced by :func:`study_query_sets`.
"""

from __future__ import annotations

import random
from collections.abc import Mapping, Sequence

from ..graph.database import GraphDatabase
from ..graph.labeled_graph import LabeledGraph, edge_key


def random_connected_subgraph(
    graph: LabeledGraph,
    num_edges: int,
    rng: random.Random,
) -> LabeledGraph | None:
    """A uniformly-grown connected edge-subgraph with *num_edges* edges.

    Grows from a random seed edge, repeatedly adding a random frontier
    edge.  Returns None when the graph has fewer than *num_edges* edges
    reachable from the seed.
    """
    edges = list(graph.edges())
    if not edges or num_edges < 1:
        return None
    seed_edge = rng.choice(sorted(edges))
    chosen = {edge_key(*seed_edge)}
    vertices = {seed_edge[0], seed_edge[1]}
    while len(chosen) < num_edges:
        frontier = []
        for vertex in vertices:
            for neighbor in graph.neighbors(vertex):
                key = edge_key(vertex, neighbor)
                if key not in chosen:
                    frontier.append(key)
        if not frontier:
            return None
        nxt = rng.choice(sorted(set(frontier)))
        chosen.add(nxt)
        vertices.update(nxt)
    return graph.edge_subgraph(chosen).relabeled()


def generate_queries(
    graphs: Mapping[int, LabeledGraph],
    count: int,
    size_range: tuple[int, int] = (4, 40),
    seed: int = 0,
) -> list[LabeledGraph]:
    """*count* random connected subgraph queries from *graphs*."""
    if not graphs:
        return []
    rng = random.Random(seed)
    source_ids = sorted(graphs)
    queries: list[LabeledGraph] = []
    attempts = 0
    max_attempts = count * 30
    while len(queries) < count and attempts < max_attempts:
        attempts += 1
        graph = graphs[rng.choice(source_ids)]
        if graph.num_edges == 0:
            continue
        lo, hi = size_range
        target = rng.randint(lo, min(hi, graph.num_edges))
        if target < 1:
            continue
        query = random_connected_subgraph(graph, target, rng)
        if query is not None and query.num_edges >= lo:
            query.name = f"Q{len(queries)}"
            queries.append(query)
    return queries


def balanced_query_set(
    database: GraphDatabase,
    delta_plus_ids: Sequence[int],
    count: int = 1000,
    size_range: tuple[int, int] = (4, 40),
    seed: int = 0,
) -> list[LabeledGraph]:
    """The paper's balanced workload.

    When ``|Δ⁺| > 0``, half the queries are derived from the inserted
    graphs and half from the rest of the (already updated) database;
    otherwise all queries come from ``D ⊕ ΔD``.
    """
    all_graphs = dict(database.items())
    new_ids = [gid for gid in delta_plus_ids if gid in all_graphs]
    if not new_ids:
        return generate_queries(all_graphs, count, size_range, seed)
    new_graphs = {gid: all_graphs[gid] for gid in new_ids}
    old_graphs = {
        gid: g for gid, g in all_graphs.items() if gid not in set(new_ids)
    }
    half = count // 2
    queries = generate_queries(new_graphs, half, size_range, seed)
    queries += generate_queries(
        old_graphs or all_graphs, count - len(queries), size_range, seed + 1
    )
    return queries


def study_query_sets(
    database: GraphDatabase,
    delta_plus_ids: Sequence[int],
    queries_per_set: int = 5,
    size_range: tuple[int, int] = (19, 45),
    seed: int = 0,
) -> dict[str, list[LabeledGraph]]:
    """The user study's three query mixes (Section 7.2).

    * ``Qs1`` — all queries from the original database;
    * ``Qs2`` — a mix (⌈2/5⌉ old, rest from Δ⁺);
    * ``Qs3`` — all queries from Δ⁺.
    """
    all_graphs = dict(database.items())
    new_ids = set(gid for gid in delta_plus_ids if gid in all_graphs)
    old_graphs = {g: v for g, v in all_graphs.items() if g not in new_ids}
    new_graphs = {g: v for g, v in all_graphs.items() if g in new_ids}
    if not new_graphs:
        raise ValueError("study_query_sets requires a non-empty Δ⁺")
    old_in_mix = max(1, (2 * queries_per_set) // 5)
    qs2 = generate_queries(old_graphs, old_in_mix, size_range, seed + 10)
    qs2 += generate_queries(
        new_graphs, queries_per_set - len(qs2), size_range, seed + 11
    )
    return {
        "Qs1": generate_queries(old_graphs, queries_per_set, size_range, seed),
        "Qs2": qs2,
        "Qs3": generate_queries(
            new_graphs, queries_per_set, size_range, seed + 20
        ),
    }
