"""Workload-level evaluation of pattern sets.

Computes the paper's automated performance measures over a query set
(Section 7.1):

* **MP** — missed percentage: fraction of queries for which no displayed
  pattern is usable at all;
* average minimum formulation **steps** under the greedy planner;
* **μ** — the reduction ratio of one approach against another;

plus the user-study aggregates (QFT / steps / VMT per approach) via the
simulated user.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

from ..graph.labeled_graph import LabeledGraph
from .formulation import (
    edge_at_a_time_steps,
    plan_formulation,
    reduction_ratio,
)
from .user_model import SimulatedUser, panel_average


@dataclass
class WorkloadResult:
    """Automated-study metrics of one approach on one query set."""

    approach: str
    missed_percentage: float
    average_steps: float
    per_query_steps: list[int] = field(default_factory=list)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<WorkloadResult {self.approach}: MP={self.missed_percentage:.1f}% "
            f"steps={self.average_steps:.1f}>"
        )


def evaluate_patterns(
    approach: str,
    patterns: list[LabeledGraph],
    queries: list[LabeledGraph],
    max_edits: int = 0,
) -> WorkloadResult:
    """MP and average steps of *patterns* on *queries*."""
    if not queries:
        return WorkloadResult(approach, 0.0, 0.0, [])
    steps: list[int] = []
    missed = 0
    for query in queries:
        plan = plan_formulation(query, patterns, max_edits=max_edits)
        steps.append(plan.steps)
        if not plan.used_patterns:
            missed += 1
    return WorkloadResult(
        approach=approach,
        missed_percentage=100.0 * missed / len(queries),
        average_steps=sum(steps) / len(steps),
        per_query_steps=steps,
    )


def compare_step_reduction(
    baseline: WorkloadResult, subject: WorkloadResult
) -> float:
    """Average per-query μ of *subject* against *baseline*.

    Positive values mean the subject needed fewer steps.
    """
    pairs = list(zip(baseline.per_query_steps, subject.per_query_steps))
    if not pairs:
        return 0.0
    ratios = [reduction_ratio(b, s) for b, s in pairs if b > 0]
    return sum(ratios) / len(ratios) if ratios else 0.0


def edge_mode_result(queries: list[LabeledGraph]) -> WorkloadResult:
    """The edge-at-a-time control row."""
    steps = [edge_at_a_time_steps(q) for q in queries]
    return WorkloadResult(
        approach="edge-at-a-time",
        missed_percentage=100.0,
        average_steps=sum(steps) / len(steps) if steps else 0.0,
        per_query_steps=steps,
    )


def run_user_study(
    pattern_sets: Mapping[str, list[LabeledGraph]],
    queries: list[LabeledGraph],
    trials_per_query: int = 5,
    seed: int = 0,
    max_edits: int = 2,
) -> dict[str, dict[str, float]]:
    """Simulated user study: avg QFT / steps / VMT per approach.

    Each query is formulated ``trials_per_query`` times (the paper has 5
    different participants formulate each query); per-trial latencies
    differ through the seeded noise model.
    """
    results: dict[str, dict[str, float]] = {}
    for approach, patterns in pattern_sets.items():
        outcomes = []
        for trial in range(trials_per_query):
            user = SimulatedUser(seed=seed + trial, max_edits=max_edits)
            for query in queries:
                outcomes.append(user.formulate(query, patterns, trial))
        results[approach] = panel_average(outcomes)
    return results
