"""Query workloads, formulation planning and the simulated user study."""

from .evaluation import (
    WorkloadResult,
    compare_step_reduction,
    edge_mode_result,
    evaluate_patterns,
    run_user_study,
)
from .formulation import (
    FormulationPlan,
    PlacedPattern,
    edge_at_a_time_steps,
    plan_formulation,
    reduction_ratio,
)
from .queries import (
    balanced_query_set,
    generate_queries,
    random_connected_subgraph,
    study_query_sets,
)
from .user_model import (
    FormulationOutcome,
    SimulatedUser,
    UserProfile,
    panel_average,
)

__all__ = [
    "FormulationOutcome",
    "FormulationPlan",
    "PlacedPattern",
    "SimulatedUser",
    "UserProfile",
    "WorkloadResult",
    "balanced_query_set",
    "compare_step_reduction",
    "edge_at_a_time_steps",
    "edge_mode_result",
    "evaluate_patterns",
    "generate_queries",
    "panel_average",
    "plan_formulation",
    "random_connected_subgraph",
    "reduction_ratio",
    "run_user_study",
    "study_query_sets",
]
