"""Pluggable graph-store backends (see docs/STORAGE.md).

The storage layer's public surface:

* :mod:`repro.store.base` — the :class:`GraphStore` contract (container
  protocol, ``apply_batch``, id allocation, statistics, lifecycle/round
  hooks), the ``open_store`` factory and the ambient default-backend
  spec that ``ExecutionConfig(store=...)`` installs;
* :mod:`repro.store.sqlite` — :class:`SQLiteStore`, the out-of-core
  backend: lazy graph hydration behind a bounded hot-graph cache,
  per-shard persisted covindex postings and verdict bitsets, and batch
  journaling through :mod:`repro.journal`'s framing/torn-tail/replay
  machinery;
* the in-memory reference implementation is
  :class:`~repro.graph.database.GraphDatabase` (re-exported here as
  ``InMemoryStore``), which every other subsystem predates and the
  conformance suite (``tests/test_store.py``) measures SQLite against.

``SQLiteStore`` and ``InMemoryStore`` resolve lazily so that
``repro.graph.database`` can import :mod:`repro.store.base` without a
cycle (the SQLite backend imports the graph layer).
"""

from .base import (
    STORE_SCHEMES,
    GraphStore,
    default_store_spec,
    open_store,
    set_default_store,
    use_default_store,
)

#: Lazily resolved exports: attribute name -> (module, attribute).
_LAZY = {
    "InMemoryStore": ("..graph.database", "GraphDatabase"),
    "SQLiteStore": (".sqlite", "SQLiteStore"),
}


def __getattr__(name: str):
    target = _LAZY.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    module_name, attribute = target
    value = getattr(import_module(module_name, __name__), attribute)
    globals()[name] = value
    return value


__all__ = [
    "GraphStore",
    "InMemoryStore",
    "SQLiteStore",
    "STORE_SCHEMES",
    "default_store_spec",
    "open_store",
    "set_default_store",
    "use_default_store",
]
