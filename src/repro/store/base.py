"""The :class:`GraphStore` contract and the ``open_store`` factory.

Every place the reproduction holds "the database" — the maintainer, the
coverage engine, the serving service, the CLI — talks to a
:class:`GraphStore`, not to a concrete container.  The contract is the
behaviour :class:`~repro.graph.database.GraphDatabase` always had:

* **container protocol** — ``len(store)``, ``id in store``,
  ``store[id]`` (:class:`~repro.graph.database.DatabaseError` on a
  missing id), iteration over ids in insertion order;
* **mutation** — ``add`` / ``remove`` / ``apply`` (alias
  :meth:`GraphStore.apply_batch`), with ids assigned monotonically and
  never reused, deletions validated before anything mutates;
* **id allocation** — :meth:`GraphStore.reserve_through` /
  :meth:`GraphStore.next_graph_id`, the public surface that replaced
  the historical ``db._next_id`` pokes;
* **statistics** — vertex/edge totals, label alphabets and the
  ``summary()`` dict experiment headers print;
* **lifecycle** — :meth:`GraphStore.flush` / :meth:`GraphStore.close`
  and the round hooks :meth:`GraphStore.begin_round` /
  :meth:`GraphStore.commit_round` / :meth:`GraphStore.rollback_round`
  that a transactional MIDAS round brackets every batch with.

Two implementations ship: the in-memory
:class:`~repro.graph.database.GraphDatabase` (the default, and the
reference for the conformance suite) and the out-of-core
:class:`~repro.store.sqlite.SQLiteStore`.  ``open_store`` maps a spec
string onto one of them; the ambient default spec
(:func:`use_default_store` / :func:`default_store_spec`) is how
``ExecutionConfig(store=...)`` travels without threading a parameter
through every call.

See docs/STORAGE.md for the backend matrix and durability semantics.
"""

from __future__ import annotations

import abc
from collections.abc import Iterator, Mapping
from contextlib import contextmanager
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..graph.database import AppliedUpdate, BatchUpdate
    from ..graph.labeled_graph import LabeledGraph


class GraphStore(abc.ABC):
    """Abstract graph-store backend: container + batches + lifecycle."""

    # ------------------------------------------------------------------
    # container protocol (abstract)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of graphs currently stored."""

    @abc.abstractmethod
    def __contains__(self, graph_id: int) -> bool:
        """Whether *graph_id* names a stored graph."""

    @abc.abstractmethod
    def __getitem__(self, graph_id: int) -> "LabeledGraph":
        """The graph stored under *graph_id*.

        Raises :class:`~repro.graph.database.DatabaseError` when absent.
        """

    @abc.abstractmethod
    def __iter__(self) -> Iterator[int]:
        """Iterate graph ids in insertion order (ascending: ids are
        assigned monotonically and never reused)."""

    # ------------------------------------------------------------------
    # mutation (abstract)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def add(self, graph: "LabeledGraph") -> int:
        """Insert *graph* and return its assigned id.

        Unnamed graphs are renamed ``G{id}`` so serialisation stays
        deterministic across backends.
        """

    @abc.abstractmethod
    def remove(self, graph_id: int) -> "LabeledGraph":
        """Delete and return the graph with *graph_id*
        (:class:`~repro.graph.database.DatabaseError` when absent)."""

    @abc.abstractmethod
    def apply(self, update: "BatchUpdate") -> "AppliedUpdate":
        """Apply ΔD in place (``D ← D ⊕ ΔD``) and return the record.

        Deletions are validated before anything mutates, then processed
        before insertions — identical across every backend, which the
        conformance suite (``tests/test_store.py``) enforces.
        """

    @abc.abstractmethod
    def copy(self) -> "GraphStore":
        """An independent same-backend copy (graph ids preserved)."""

    # ------------------------------------------------------------------
    # id allocation (abstract)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def next_graph_id(self) -> int:
        """The id the next :meth:`add` will assign."""

    @abc.abstractmethod
    def reserve_through(self, graph_id: int) -> None:
        """Advance the allocator so the next assigned id is at least
        *graph_id* (never moves it backwards).  Used by deserialisers to
        re-create explicit id spaces faithfully."""

    # ------------------------------------------------------------------
    # derived container views (concrete)
    # ------------------------------------------------------------------
    def ids(self) -> list[int]:
        """All graph ids in ascending order."""
        return sorted(self)

    def graphs(self) -> Iterator["LabeledGraph"]:
        for graph_id in self.ids():
            yield self[graph_id]

    def items(self) -> Iterator[tuple[int, "LabeledGraph"]]:
        for graph_id in self.ids():
            yield graph_id, self[graph_id]

    def apply_batch(self, update: "BatchUpdate") -> "AppliedUpdate":
        """Alias of :meth:`apply` — the spelling the store API documents."""
        return self.apply(update)

    def updated(self, update: "BatchUpdate") -> "GraphStore":
        """A new store equal to ``D ⊕ ΔD`` without mutating ``D``."""
        clone = self.copy()
        clone.apply(update)
        return clone

    def ingest(self, items: Mapping[int, "LabeledGraph"] | "GraphStore") -> None:
        """Bulk-load ``(id, graph)`` pairs, preserving the given ids.

        Accepts another store or any mapping; ids must arrive in
        ascending order (both sources guarantee it).
        """
        for graph_id, graph in items.items():
            self.reserve_through(graph_id)
            assigned = self.add(graph)
            if assigned != graph_id:
                from ..graph.database import DatabaseError

                raise DatabaseError(
                    f"cannot ingest graph id {graph_id}: allocator "
                    f"assigned {assigned} (non-monotonic source ids?)"
                )

    # ------------------------------------------------------------------
    # statistics (concrete; backends may override with faster queries)
    # ------------------------------------------------------------------
    def total_vertices(self) -> int:
        return sum(g.num_vertices for g in self.graphs())

    def total_edges(self) -> int:
        return sum(g.num_edges for g in self.graphs())

    def vertex_label_alphabet(self) -> set[str]:
        alphabet: set[str] = set()
        for graph in self.graphs():
            alphabet |= graph.vertex_label_set()
        return alphabet

    def edge_label_document_frequency(self) -> dict[tuple[str, str], int]:
        """For each edge label, the number of graphs containing it."""
        frequency: dict[tuple[str, str], int] = {}
        for graph in self.graphs():
            for edge_label in graph.edge_label_set():
                frequency[edge_label] = frequency.get(edge_label, 0) + 1
        return frequency

    def summary(self) -> dict[str, float]:
        """Aggregate statistics used in logs and experiment headers."""
        count = len(self)
        if count == 0:
            return {
                "graphs": 0,
                "avg_vertices": 0.0,
                "avg_edges": 0.0,
                "labels": 0,
            }
        return {
            "graphs": count,
            "avg_vertices": self.total_vertices() / count,
            "avg_edges": self.total_edges() / count,
            "labels": len(self.vertex_label_alphabet()),
        }

    # ------------------------------------------------------------------
    # lifecycle hooks (concrete no-ops; out-of-core backends override)
    # ------------------------------------------------------------------
    def begin_round(self) -> None:
        """Bracket the start of a transactional maintenance round."""

    def commit_round(self) -> None:
        """Durably commit everything applied since :meth:`begin_round`."""

    def rollback_round(self) -> None:
        """Undo everything applied since :meth:`begin_round`."""

    def flush(self) -> None:
        """Push buffered state to durable storage (no-op in memory)."""

    def close(self) -> None:
        """Release backend resources; the store is unusable afterwards."""

    def __enter__(self) -> "GraphStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ----------------------------------------------------------------------
# the factory
# ----------------------------------------------------------------------
#: Spec prefixes ``open_store`` understands.
STORE_SCHEMES = ("memory", "sqlite")


def open_store(
    spec: "GraphStore | str | Path | None" = None,
    **options,
) -> GraphStore:
    """Open a graph store from a spec string, path or existing store.

    ================================  ====================================
    ``spec``                          resolves to
    ================================  ====================================
    ``None`` / ``"memory"``           a fresh in-memory ``GraphDatabase``
    ``"sqlite:PATH"``                 ``SQLiteStore(PATH)`` (``:memory:``
                                      allowed; a file is created/reopened)
    ``path/to/db.sqlite`` / ``*.db``  ``SQLiteStore(path)``
    ``path/to/dataset.json``          the file read into an in-memory
                                      store via ``repro.graph.io``
    an existing ``GraphStore``        returned unchanged
    ================================  ====================================

    Keyword *options* are forwarded to the backend constructor (for
    SQLite: ``journal_dir``, ``cache_size``, ``num_shards``, ``fsync``).
    """
    if isinstance(spec, GraphStore):
        return spec
    if spec is None or spec == "memory":
        from ..graph.database import GraphDatabase

        return GraphDatabase()
    text = str(spec)
    if text.startswith("sqlite:"):
        from .sqlite import SQLiteStore

        return SQLiteStore(text.split(":", 1)[1], **options)
    if text.endswith((".db", ".sqlite", ".sqlite3")):
        from .sqlite import SQLiteStore

        return SQLiteStore(text, **options)
    if text.endswith(".json"):
        from ..graph.io import read_database

        return read_database(text)
    raise ValueError(
        f"unrecognised store spec {text!r}: expected 'memory', "
        f"'sqlite:PATH', a *.db/*.sqlite path or a *.json dataset file"
    )


# ----------------------------------------------------------------------
# ambient default backend (ExecutionConfig.store installs this)
# ----------------------------------------------------------------------
_DEFAULT_STORE_SPEC: str | None = None


def default_store_spec() -> str | None:
    """The ambient backend spec, or ``None`` (= in-memory)."""
    return _DEFAULT_STORE_SPEC


def set_default_store(spec: str | None) -> None:
    global _DEFAULT_STORE_SPEC
    _DEFAULT_STORE_SPEC = spec


@contextmanager
def use_default_store(spec: str | None):
    """Scoped ambient default backend, mirroring ``use_caching`` et al."""
    previous = default_store_spec()
    set_default_store(spec)
    try:
        yield
    finally:
        set_default_store(previous)


__all__ = [
    "GraphStore",
    "STORE_SCHEMES",
    "default_store_spec",
    "open_store",
    "set_default_store",
    "use_default_store",
]
