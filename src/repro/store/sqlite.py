"""The out-of-core SQLite graph store.

:class:`SQLiteStore` implements the :class:`~repro.store.base.GraphStore`
contract over a single SQLite file so a database far larger than RAM can
back the maintenance/serving machinery:

* **lazy hydration** — graphs are stored as the canonical JSON payloads
  of :func:`repro.graph.io.graph_to_dict` (vertex ids normalised to
  ``0..n-1``, exactly like the dataset file format) and hydrated on
  access through a bounded LRU hot-graph cache;
* **per-shard persisted covindex state** — each graph hashes to a shard
  (``id % num_shards``); the invariant posting lists of
  :mod:`repro.covindex.index` and the engine's verdict bitsets are
  maintained as per-shard bitset rows, so :meth:`coverage_index`
  rebuilds a :class:`~repro.covindex.index.CoverageIndex` from disk
  without re-deriving a single invariant, and a verified pattern's
  verdicts survive a restart (:meth:`save_verdicts` /
  :meth:`load_verdicts`);
* **shard-parallel maintenance** — a large batch fans its per-shard
  posting deltas through the ambient
  :class:`~repro.parallel.pool.KernelPool`
  (:func:`~repro.parallel.kernels.shard_postings_kernel`) with ordered
  reduction, so results are byte-identical at any worker count;
* **batch journaling** — every ``apply`` is framed through
  :class:`repro.journal.segments.Journal` (same CRC framing, torn-tail
  truncation and fsync policies as the serving WAL): a ``submitted``
  record lands *before* the SQL transaction, the matching outcome
  record after it, and opening the store replays any unresolved batch
  so a crash between acknowledgement and commit loses nothing.

Round lifecycle: a transactional MIDAS round brackets its batch with
:meth:`begin_round` / :meth:`commit_round` / :meth:`rollback_round`;
inside a round the SQL transaction (and the journal outcome) is
deferred to the round verdict, so a rolled-back round leaves the file —
and the journal — exactly as before.  ``copy.deepcopy`` of a
``SQLiteStore`` returns the store itself for the same reason: the
maintainer's deep-copied rollback snapshot would otherwise duplicate an
on-disk database per round; the round hooks carry the rollback instead.

See docs/STORAGE.md for the backend matrix and durability semantics.
"""

from __future__ import annotations

import json
import os
import sqlite3
import tempfile
from collections import OrderedDict
from collections.abc import Iterator
from pathlib import Path

from ..covindex.index import CoverageIndex, graph_posting_keys
from ..graph.database import AppliedUpdate, BatchUpdate, DatabaseError
from ..graph.io import graph_from_dict, graph_to_dict
from ..graph.labeled_graph import LabeledGraph
from ..obs import get_registry
from ..parallel.pool import current_pool
from .base import GraphStore

FORMAT_TAG = "repro-store-v1"

#: Default bound on the hot-graph hydration cache (graphs, not bytes).
DEFAULT_CACHE_SIZE = 512

#: Default shard count for persisted postings / verdicts.
DEFAULT_NUM_SHARDS = 8

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS graphs (
    id INTEGER PRIMARY KEY,
    shard INTEGER NOT NULL,
    name TEXT NOT NULL,
    payload TEXT NOT NULL,
    num_vertices INTEGER NOT NULL,
    num_edges INTEGER NOT NULL,
    vlabels TEXT NOT NULL,
    elabels TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS graphs_shard ON graphs (shard);
CREATE TABLE IF NOT EXISTS graph_keys (
    id INTEGER PRIMARY KEY,
    keys TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS postings (
    shard INTEGER NOT NULL,
    key TEXT NOT NULL,
    bits BLOB NOT NULL,
    PRIMARY KEY (shard, key)
);
CREATE TABLE IF NOT EXISTS verdicts (
    shard INTEGER NOT NULL,
    pattern TEXT NOT NULL,
    match_bits BLOB NOT NULL,
    seen_bits BLOB NOT NULL,
    PRIMARY KEY (shard, pattern)
);
"""


def _tuplify(value):
    """Recursively turn JSON arrays back into the tuples keys are made
    of (edge-label keys nest pairs: ``("el", ("C", "O"), 1)``)."""
    if isinstance(value, list):
        return tuple(_tuplify(item) for item in value)
    return value


def _key_to_text(key: tuple) -> str:
    return json.dumps(key, separators=(",", ":"))


def _key_from_text(text: str) -> tuple:
    return _tuplify(json.loads(text))


def _bits_to_blob(bits: int) -> bytes:
    return bits.to_bytes((bits.bit_length() + 7) // 8 or 1, "little")


def _blob_to_bits(blob: bytes) -> int:
    return int.from_bytes(blob, "little")


class SQLiteStore(GraphStore):
    """A :class:`GraphStore` backed by one SQLite file (or ``:memory:``)."""

    def __init__(
        self,
        path: str | Path = ":memory:",
        *,
        journal_dir: str | Path | None = None,
        journaled: bool = True,
        cache_size: int = DEFAULT_CACHE_SIZE,
        num_shards: int = DEFAULT_NUM_SHARDS,
        fsync: str = "always",
    ) -> None:
        if cache_size < 1:
            raise ValueError("cache_size must be >= 1")
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.path = str(path)
        if self.path != ":memory:":
            Path(self.path).parent.mkdir(parents=True, exist_ok=True)
        self._ephemeral = False
        self._in_round = False
        self._round_pending: list[int] = []
        self._cache: OrderedDict[int, LabeledGraph] = OrderedDict()
        self._cache_size = cache_size
        self._shard_masks: dict[int, int] = {}
        self._connection = sqlite3.connect(
            self.path, isolation_level=None, check_same_thread=False
        )
        self._connection.execute("PRAGMA journal_mode=TRUNCATE")
        self._connection.executescript(_SCHEMA)
        stored = self._meta("format")
        if stored is None:
            self._set_meta("format", FORMAT_TAG)
            self._set_meta("next_id", "0")
            self._set_meta("last_applied_update", "-1")
            self._set_meta("num_shards", str(num_shards))
        elif stored != FORMAT_TAG:
            raise DatabaseError(
                f"{self.path}: unsupported store format {stored!r}"
            )
        self.num_shards = int(self._meta("num_shards"))
        self._next_id = int(self._meta("next_id"))
        self._update_seq = int(self._meta("last_applied_update"))
        self._journal = None
        if journaled and self.path != ":memory:":
            from ..journal.segments import Journal

            directory = Path(journal_dir) if journal_dir else Path(
                f"{self.path}.wal"
            )
            self._journal = Journal(directory, fsync=fsync)
            self._replay_unresolved()

    # ------------------------------------------------------------------
    # meta helpers
    # ------------------------------------------------------------------
    def _meta(self, key: str) -> str | None:
        row = self._connection.execute(
            "SELECT value FROM meta WHERE key = ?", (key,)
        ).fetchone()
        return None if row is None else row[0]

    def _set_meta(self, key: str, value: str) -> None:
        self._connection.execute(
            "INSERT INTO meta (key, value) VALUES (?, ?) "
            "ON CONFLICT(key) DO UPDATE SET value = excluded.value",
            (key, value),
        )

    def _shard_of(self, graph_id: int) -> int:
        return graph_id % self.num_shards

    # ------------------------------------------------------------------
    # container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._connection.execute(
            "SELECT COUNT(*) FROM graphs"
        ).fetchone()[0]

    def __contains__(self, graph_id: int) -> bool:
        if not isinstance(graph_id, int):
            return False
        return (
            self._connection.execute(
                "SELECT 1 FROM graphs WHERE id = ?", (graph_id,)
            ).fetchone()
            is not None
        )

    def __getitem__(self, graph_id: int) -> LabeledGraph:
        registry = get_registry()
        cached = self._cache.get(graph_id)
        if cached is not None:
            self._cache.move_to_end(graph_id)
            registry.counter("store.cache_hits").add(1)
            return cached
        row = self._connection.execute(
            "SELECT payload FROM graphs WHERE id = ?", (graph_id,)
        ).fetchone()
        if row is None:
            raise DatabaseError(f"no graph with id {graph_id}")
        registry.counter("store.cache_misses").add(1)
        graph = graph_from_dict(json.loads(row[0]))
        self._cache[graph_id] = graph
        while len(self._cache) > self._cache_size:
            self._cache.popitem(last=False)
        return graph

    def __iter__(self) -> Iterator[int]:
        rows = self._connection.execute(
            "SELECT id FROM graphs ORDER BY id"
        ).fetchall()
        return iter([row[0] for row in rows])

    # ------------------------------------------------------------------
    # id allocation
    # ------------------------------------------------------------------
    def next_graph_id(self) -> int:
        return self._next_id

    def reserve_through(self, graph_id: int) -> None:
        if graph_id <= self._next_id:
            return
        self._next_id = graph_id
        self._set_meta("next_id", str(self._next_id))

    # ------------------------------------------------------------------
    # mutation primitives
    # ------------------------------------------------------------------
    def _insert_rows(
        self, graphs: list[tuple[int, LabeledGraph]]
    ) -> None:
        """Insert graph rows and maintain the per-shard posting lists.

        Large batches fan their per-shard posting deltas through the
        ambient kernel pool with ordered reduction; the serial loop is
        the reference the kernel must match bit for bit.
        """
        registry = get_registry()
        rows = []
        for graph_id, graph in graphs:
            payload = graph_to_dict(graph)
            rows.append(
                (
                    graph_id,
                    self._shard_of(graph_id),
                    graph.name or "",
                    json.dumps(payload, separators=(",", ":")),
                    graph.num_vertices,
                    graph.num_edges,
                    json.dumps(sorted(graph.vertex_label_set())),
                    json.dumps(sorted(graph.edge_label_set())),
                )
            )
        self._connection.executemany(
            "INSERT INTO graphs (id, shard, name, payload, num_vertices, "
            "num_edges, vlabels, elabels) VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
            rows,
        )
        # Per-shard posting deltas, shard-parallel when worthwhile.
        by_shard: dict[int, list[tuple[int, LabeledGraph]]] = {}
        for graph_id, graph in graphs:
            by_shard.setdefault(self._shard_of(graph_id), []).append(
                (graph_id, graph)
            )
        items = [
            (shard, tuple(members))
            for shard, members in sorted(by_shard.items())
        ]
        from ..parallel.kernels import shard_postings_kernel

        pool = current_pool()
        if pool.worth_parallelizing(len(graphs)):
            deltas = pool.map(shard_postings_kernel, items, payload=None)
            registry.counter("store.shard_fanouts").add(1)
        else:
            deltas = shard_postings_kernel(None, items)
        for shard, posting_delta, keys_by_graph in deltas:
            self._connection.executemany(
                "INSERT INTO graph_keys (id, keys) VALUES (?, ?)",
                [
                    (gid, json.dumps([list(k) for k in keys]))
                    for gid, keys in sorted(keys_by_graph.items())
                ],
            )
            for key, bits in sorted(posting_delta.items()):
                text = _key_to_text(key)
                row = self._connection.execute(
                    "SELECT bits FROM postings WHERE shard = ? AND key = ?",
                    (shard, text),
                ).fetchone()
                merged = bits | (_blob_to_bits(row[0]) if row else 0)
                self._connection.execute(
                    "INSERT INTO postings (shard, key, bits) "
                    "VALUES (?, ?, ?) ON CONFLICT(shard, key) "
                    "DO UPDATE SET bits = excluded.bits",
                    (shard, text, _bits_to_blob(merged)),
                )
            self._shard_masks.pop(shard, None)
        registry.counter("store.graphs_inserted").add(len(graphs))

    def _delete_row(self, graph_id: int) -> None:
        shard = self._shard_of(graph_id)
        mask = ~(1 << graph_id)
        row = self._connection.execute(
            "SELECT keys FROM graph_keys WHERE id = ?", (graph_id,)
        ).fetchone()
        if row is not None:
            for key_list in json.loads(row[0]):
                text = _key_to_text(tuple(key_list))
                posting = self._connection.execute(
                    "SELECT bits FROM postings WHERE shard = ? AND key = ?",
                    (shard, text),
                ).fetchone()
                if posting is None:
                    continue
                remaining = _blob_to_bits(posting[0]) & mask
                if remaining:
                    self._connection.execute(
                        "UPDATE postings SET bits = ? "
                        "WHERE shard = ? AND key = ?",
                        (_bits_to_blob(remaining), shard, text),
                    )
                else:
                    self._connection.execute(
                        "DELETE FROM postings WHERE shard = ? AND key = ?",
                        (shard, text),
                    )
        self._connection.execute(
            "DELETE FROM graph_keys WHERE id = ?", (graph_id,)
        )
        self._connection.execute(
            "DELETE FROM graphs WHERE id = ?", (graph_id,)
        )
        for verdict_row in self._connection.execute(
            "SELECT pattern, match_bits, seen_bits FROM verdicts "
            "WHERE shard = ?",
            (shard,),
        ).fetchall():
            self._connection.execute(
                "UPDATE verdicts SET match_bits = ?, seen_bits = ? "
                "WHERE shard = ? AND pattern = ?",
                (
                    _bits_to_blob(_blob_to_bits(verdict_row[1]) & mask),
                    _bits_to_blob(_blob_to_bits(verdict_row[2]) & mask),
                    shard,
                    verdict_row[0],
                ),
            )
        self._cache.pop(graph_id, None)
        self._shard_masks.pop(shard, None)
        get_registry().counter("store.graphs_deleted").add(1)

    # ------------------------------------------------------------------
    # transactions: autocommit vs round-deferred
    # ------------------------------------------------------------------
    def _begin(self) -> None:
        if not self._connection.in_transaction:
            self._connection.execute("BEGIN IMMEDIATE")

    def begin_round(self) -> None:
        if self._in_round:
            raise DatabaseError("a maintenance round is already open")
        self._begin()
        self._in_round = True
        self._round_pending = []

    def commit_round(self) -> None:
        if not self._in_round:
            return
        self._connection.execute("COMMIT")
        self._in_round = False
        for update_id in self._round_pending:
            self._journal_outcome(update_id, "committed")
        self._round_pending = []

    def rollback_round(self) -> None:
        if not self._in_round:
            return
        self._connection.execute("ROLLBACK")
        self._in_round = False
        # Re-read allocator state the rollback reverted and drop every
        # hydrated graph: some cached objects may belong to the undone
        # batch.
        self._next_id = int(self._meta("next_id"))
        self._update_seq = int(self._meta("last_applied_update"))
        self._cache.clear()
        self._shard_masks.clear()
        for update_id in self._round_pending:
            self._journal_outcome(update_id, "rolled_back")
        self._round_pending = []
        get_registry().counter("store.rounds_rolled_back").add(1)

    # ------------------------------------------------------------------
    # journaling
    # ------------------------------------------------------------------
    def _journal_submitted(
        self, update: BatchUpdate, assigned: list[int], update_id: int
    ) -> None:
        if self._journal is None:
            return
        self._journal.append(
            {
                "type": "submitted",
                "update_id": update_id,
                "store_batch": {
                    "insertions": [
                        graph_to_dict(graph) for graph in update.insertions
                    ],
                    "deletions": list(update.deletions),
                    "assigned_ids": assigned,
                    "next_id_after": self._next_id + len(update.insertions),
                    "deferred": self._in_round,
                },
            }
        )

    def _journal_outcome(self, update_id: int, outcome: str) -> None:
        if self._journal is None:
            return
        self._journal.append({"type": outcome, "update_id": update_id})

    def _replay_unresolved(self) -> None:
        """Resolve batches journalled before a crash (write-ahead replay).

        A ``submitted`` record with no outcome is either (a) already in
        the file — the crash hit between the SQL commit and the outcome
        append — resolved as committed; (b) an autocommit batch whose
        SQL never committed — re-applied, then committed; or (c) a
        round-deferred batch whose round never committed — resolved as
        aborted, because the SQL rollback already erased it.
        """
        unresolved = self._journal.unresolved_ids()
        if not unresolved:
            return
        registry = get_registry()
        submitted = {
            record.update_id: record.payload
            for record in self._journal.records()
            if record.type == "submitted"
        }
        last_applied = int(self._meta("last_applied_update"))
        for update_id in sorted(unresolved):
            payload = submitted.get(update_id, {}).get("store_batch")
            if payload is None:
                self._journal_outcome(update_id, "failed")
                continue
            if update_id <= last_applied:
                self._journal_outcome(update_id, "committed")
                continue
            if payload["deferred"]:
                self._journal_outcome(update_id, "aborted")
                continue
            update = BatchUpdate.of(
                insertions=[
                    graph_from_dict(entry)
                    for entry in payload["insertions"]
                ],
                deletions=payload["deletions"],
            )
            self._begin()
            for graph_id in update.deletions:
                if graph_id in self:
                    self._delete_row(graph_id)
            self.reserve_through(payload["assigned_ids"][0] if payload[
                "assigned_ids"
            ] else self._next_id)
            named = []
            for graph_id, graph in zip(
                payload["assigned_ids"], update.insertions
            ):
                named.append(
                    (graph_id, graph if graph.name else graph.copy(
                        name=f"G{graph_id}"
                    ))
                )
            if named:
                self._insert_rows(named)
            self._next_id = max(self._next_id, payload["next_id_after"])
            self._set_meta("next_id", str(self._next_id))
            self._set_meta("last_applied_update", str(update_id))
            self._update_seq = max(self._update_seq, update_id)
            self._connection.execute("COMMIT")
            self._journal_outcome(update_id, "committed")
            registry.counter("store.replayed_batches").add(1)

    # ------------------------------------------------------------------
    # mutation API
    # ------------------------------------------------------------------
    def add(self, graph: LabeledGraph) -> int:
        graph_id = self._next_id
        named = graph if graph.name else graph.copy(name=f"G{graph_id}")
        self._begin()
        self._insert_rows([(graph_id, named)])
        self._next_id = graph_id + 1
        self._set_meta("next_id", str(self._next_id))
        if not self._in_round:
            self._connection.execute("COMMIT")
        return graph_id

    def remove(self, graph_id: int) -> LabeledGraph:
        graph = self[graph_id]  # raises DatabaseError when absent
        self._begin()
        self._delete_row(graph_id)
        if not self._in_round:
            self._connection.execute("COMMIT")
        return graph

    def apply(self, update: BatchUpdate) -> AppliedUpdate:
        missing = [gid for gid in update.deletions if gid not in self]
        if missing:
            raise DatabaseError(f"cannot delete missing graph ids: {missing}")
        assigned = list(
            range(self._next_id, self._next_id + len(update.insertions))
        )
        self._update_seq += 1
        update_id = self._update_seq
        self._journal_submitted(update, assigned, update_id)
        self._begin()
        record = AppliedUpdate()
        for graph_id in update.deletions:
            record.deleted_graphs[graph_id] = self[graph_id]
            self._delete_row(graph_id)
            record.deleted_ids.append(graph_id)
        named = []
        for graph_id, graph in zip(assigned, update.insertions):
            named.append(
                (graph_id, graph if graph.name else graph.copy(
                    name=f"G{graph_id}"
                ))
            )
            record.inserted_ids.append(graph_id)
        if named:
            self._insert_rows(named)
        self._next_id += len(update.insertions)
        self._set_meta("next_id", str(self._next_id))
        self._set_meta("last_applied_update", str(update_id))
        if self._in_round:
            self._round_pending.append(update_id)
        else:
            self._connection.execute("COMMIT")
            self._journal_outcome(update_id, "committed")
        get_registry().counter("store.batches_applied").add(1)
        return record

    # ------------------------------------------------------------------
    # statistics (SQL aggregates; no hydration)
    # ------------------------------------------------------------------
    def total_vertices(self) -> int:
        return self._connection.execute(
            "SELECT COALESCE(SUM(num_vertices), 0) FROM graphs"
        ).fetchone()[0]

    def total_edges(self) -> int:
        return self._connection.execute(
            "SELECT COALESCE(SUM(num_edges), 0) FROM graphs"
        ).fetchone()[0]

    def vertex_label_alphabet(self) -> set[str]:
        alphabet: set[str] = set()
        for (vlabels,) in self._connection.execute(
            "SELECT vlabels FROM graphs"
        ):
            alphabet.update(json.loads(vlabels))
        return alphabet

    def edge_label_document_frequency(self) -> dict[tuple[str, str], int]:
        frequency: dict[tuple[str, str], int] = {}
        for (elabels,) in self._connection.execute(
            "SELECT elabels FROM graphs"
        ):
            for pair in json.loads(elabels):
                key = tuple(pair)
                frequency[key] = frequency.get(key, 0) + 1
        return frequency

    # ------------------------------------------------------------------
    # persisted covindex state
    # ------------------------------------------------------------------
    def coverage_index(self) -> CoverageIndex:
        """Rebuild a :class:`CoverageIndex` from the persisted per-shard
        posting lists — no invariant is re-derived from any graph."""
        postings: dict[tuple, int] = {}
        for key_text, blob in self._connection.execute(
            "SELECT key, bits FROM postings"
        ):
            key = _key_from_text(key_text)
            postings[key] = postings.get(key, 0) | _blob_to_bits(blob)
        keys_by_graph = {
            graph_id: {_tuplify(k) for k in json.loads(text)}
            for graph_id, text in self._connection.execute(
                "SELECT id, keys FROM graph_keys"
            )
        }
        return CoverageIndex.from_parts(postings, keys_by_graph)

    def _shard_mask(self, shard: int) -> int:
        mask = self._shard_masks.get(shard)
        if mask is None:
            mask = 0
            for (graph_id,) in self._connection.execute(
                "SELECT id FROM graphs WHERE shard = ?", (shard,)
            ):
                mask |= 1 << graph_id
            self._shard_masks[shard] = mask
        return mask

    def save_verdicts(
        self, pattern_key: tuple, match_bits: int, seen_bits: int
    ) -> None:
        """Persist one pattern's verdict bitsets, split by shard."""
        text = _key_to_text(pattern_key)
        self._begin()
        for shard in range(self.num_shards):
            mask = self._shard_mask(shard)
            self._connection.execute(
                "INSERT INTO verdicts (shard, pattern, match_bits, "
                "seen_bits) VALUES (?, ?, ?, ?) "
                "ON CONFLICT(shard, pattern) DO UPDATE SET "
                "match_bits = excluded.match_bits, "
                "seen_bits = excluded.seen_bits",
                (
                    shard,
                    text,
                    _bits_to_blob(match_bits & mask),
                    _bits_to_blob(seen_bits & mask),
                ),
            )
        if not self._in_round:
            self._connection.execute("COMMIT")
        get_registry().counter("store.verdicts_saved").add(1)

    def load_verdicts(self, pattern_key: tuple) -> tuple[int, int] | None:
        """The persisted ``(match_bits, seen_bits)`` of *pattern_key*."""
        match_bits = seen_bits = 0
        rows = self._connection.execute(
            "SELECT match_bits, seen_bits FROM verdicts WHERE pattern = ?",
            (_key_to_text(pattern_key),),
        ).fetchall()
        if not rows:
            return None
        for match_blob, seen_blob in rows:
            match_bits |= _blob_to_bits(match_blob)
            seen_bits |= _blob_to_bits(seen_blob)
        return match_bits, seen_bits

    def verdict_keys(self) -> list[tuple]:
        return sorted(
            {
                _key_from_text(text)
                for (text,) in self._connection.execute(
                    "SELECT DISTINCT pattern FROM verdicts"
                )
            }
        )

    # ------------------------------------------------------------------
    # copy / pickling / deepcopy
    # ------------------------------------------------------------------
    def copy(self) -> "SQLiteStore":
        """An independent same-backend copy.

        File-backed stores clone into an ephemeral sibling file (removed
        on :meth:`close`); ``:memory:`` stores clone into a fresh
        ``:memory:`` database.  Copies are never journalled — they are
        derived snapshots, not systems of record.
        """
        if self._in_round:
            raise DatabaseError("cannot copy a store mid-round")
        if self.path == ":memory:":
            clone = SQLiteStore(
                ":memory:",
                cache_size=self._cache_size,
                num_shards=self.num_shards,
            )
        else:
            handle, clone_path = tempfile.mkstemp(
                prefix=f"{Path(self.path).name}.copy-",
                dir=str(Path(self.path).resolve().parent),
            )
            os.close(handle)
            clone = SQLiteStore(
                clone_path,
                journaled=False,
                cache_size=self._cache_size,
                num_shards=self.num_shards,
            )
            clone._ephemeral = True
        self._connection.backup(clone._connection)
        clone.num_shards = int(clone._meta("num_shards"))
        clone._next_id = int(clone._meta("next_id"))
        clone._update_seq = int(clone._meta("last_applied_update"))
        return clone

    def __deepcopy__(self, memo: dict) -> "SQLiteStore":
        # The transactional round snapshot must not duplicate an
        # on-disk database per round; rollback travels through the
        # round hooks instead (see the module docstring).
        memo[id(self)] = self
        return self

    def __getstate__(self) -> dict:
        if self._in_round:
            raise DatabaseError("cannot pickle a store mid-round")
        return {
            "format": FORMAT_TAG,
            "dump": "\n".join(self._connection.iterdump()),
            "cache_size": self._cache_size,
        }

    def __setstate__(self, state: dict) -> None:
        # Checkpoints are self-contained: a pickled store rehydrates
        # into a fresh :memory: database rather than re-opening the
        # original path (which may not exist where the checkpoint is
        # restored).
        self.path = ":memory:"
        self._ephemeral = False
        self._in_round = False
        self._round_pending = []
        self._cache = OrderedDict()
        self._cache_size = state["cache_size"]
        self._shard_masks = {}
        self._journal = None
        self._connection = sqlite3.connect(
            ":memory:", isolation_level=None, check_same_thread=False
        )
        self._connection.executescript(state["dump"])
        self.num_shards = int(self._meta("num_shards"))
        self._next_id = int(self._meta("next_id"))
        self._update_seq = int(self._meta("last_applied_update"))

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def flush(self) -> None:
        if self._journal is not None:
            self._journal.sync()

    def close(self) -> None:
        connection = getattr(self, "_connection", None)
        if connection is None:
            return
        if self._in_round:
            self.rollback_round()
        if self._journal is not None:
            self._journal.close()
            self._journal = None
        connection.close()
        self._connection = None
        if self._ephemeral:
            Path(self.path).unlink(missing_ok=True)

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SQLiteStore path={self.path!r} |D|={len(self)}>"


__all__ = [
    "DEFAULT_CACHE_SIZE",
    "DEFAULT_NUM_SHARDS",
    "SQLiteStore",
]
