"""Database-level statistics.

Used to validate that the synthetic datasets stand in credibly for the
paper's chemical repositories (label skew, size distribution, sparsity)
and by the experiment headers that describe their inputs.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass

from .database import GraphDatabase


@dataclass(frozen=True)
class DatabaseStatistics:
    """Aggregate shape statistics of a graph database."""

    num_graphs: int
    avg_vertices: float
    avg_edges: float
    max_vertices: int
    max_edges: int
    avg_density: float
    label_counts: dict[str, int]
    label_entropy_bits: float
    avg_degree: float
    tree_fraction: float

    def dominant_label(self) -> str | None:
        if not self.label_counts:
            return None
        return max(self.label_counts, key=lambda k: self.label_counts[k])


def label_entropy(counts: Counter) -> float:
    """Shannon entropy (bits) of a label multiset."""
    total = sum(counts.values())
    if total == 0:
        return 0.0
    entropy = 0.0
    for count in counts.values():
        p = count / total
        entropy -= p * math.log2(p)
    return entropy


def database_statistics(database: GraphDatabase) -> DatabaseStatistics:
    """Compute :class:`DatabaseStatistics` in one pass over *database*."""
    n = len(database)
    if n == 0:
        return DatabaseStatistics(
            num_graphs=0,
            avg_vertices=0.0,
            avg_edges=0.0,
            max_vertices=0,
            max_edges=0,
            avg_density=0.0,
            label_counts={},
            label_entropy_bits=0.0,
            avg_degree=0.0,
            tree_fraction=0.0,
        )
    labels: Counter = Counter()
    total_vertices = 0
    total_edges = 0
    max_vertices = 0
    max_edges = 0
    density_sum = 0.0
    trees = 0
    for graph in database.graphs():
        total_vertices += graph.num_vertices
        total_edges += graph.num_edges
        max_vertices = max(max_vertices, graph.num_vertices)
        max_edges = max(max_edges, graph.num_edges)
        density_sum += graph.density()
        labels.update(graph.labels().values())
        if graph.is_tree():
            trees += 1
    return DatabaseStatistics(
        num_graphs=n,
        avg_vertices=total_vertices / n,
        avg_edges=total_edges / n,
        max_vertices=max_vertices,
        max_edges=max_edges,
        avg_density=density_sum / n,
        label_counts=dict(labels),
        label_entropy_bits=label_entropy(labels),
        avg_degree=(2 * total_edges / total_vertices)
        if total_vertices
        else 0.0,
        tree_fraction=trees / n,
    )


def describe(database: GraphDatabase) -> str:
    """One-paragraph textual description for experiment headers."""
    stats = database_statistics(database)
    if stats.num_graphs == 0:
        return "empty database"
    dominant = stats.dominant_label()
    return (
        f"{stats.num_graphs} graphs, "
        f"avg |V|={stats.avg_vertices:.1f} |E|={stats.avg_edges:.1f} "
        f"(max {stats.max_vertices}/{stats.max_edges}), "
        f"avg degree {stats.avg_degree:.2f}, "
        f"{100 * stats.tree_fraction:.0f}% acyclic, "
        f"{len(stats.label_counts)} labels "
        f"(dominant {dominant!r}, entropy {stats.label_entropy_bits:.2f} bits)"
    )
