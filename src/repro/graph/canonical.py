"""Canonical forms for small labelled graphs.

Canned patterns, candidate patterns and graphlets are tiny graphs (the
paper's pattern budget caps them at ``eta_max`` edges, 12 by default), so
an exact canonical labelling via colour refinement plus backtracking over
the automorphism search tree is affordable.  The canonical form lets the
framework deduplicate candidate patterns and compare patterns for equality
in O(1) after a one-off canonicalisation.

The algorithm is a compact individualisation-refinement scheme:

1. Initial colours are vertex labels.
2. Colours are refined with 1-WL (each vertex's colour is combined with
   the multiset of neighbour colours) until stable.
3. If the partition is discrete, the ordering induced by colours yields a
   candidate certificate.  Otherwise the first vertex of the first
   non-singleton colour class is individualised (one branch per member)
   and the minimum certificate over branches is taken.

This is exponential in the worst case but graphs here have at most a few
dozen vertices, and label diversity keeps the search tree tiny.
"""

from __future__ import annotations

from .labeled_graph import LabeledGraph, VertexId

Certificate = tuple


def _refine(
    graph: LabeledGraph, colors: dict[VertexId, tuple]
) -> dict[VertexId, int]:
    """Run 1-WL colour refinement to a fixed point, returning dense colours."""
    current = dict(colors)
    num_classes = len(set(current.values()))
    while True:
        signature = {
            v: (current[v], tuple(sorted(current[n] for n in graph.neighbors(v))))
            for v in graph.vertices()
        }
        palette = {sig: i for i, sig in enumerate(sorted(set(signature.values())))}
        refined = {v: palette[signature[v]] for v in graph.vertices()}
        new_num_classes = len(set(refined.values()))
        if new_num_classes == num_classes:
            return refined
        current = refined
        num_classes = new_num_classes


def _certificate_for_order(
    graph: LabeledGraph, order: list[VertexId]
) -> Certificate:
    """Build a certificate string for a fixed total vertex order."""
    index = {v: i for i, v in enumerate(order)}
    labels = tuple(graph.label(v) for v in order)
    edges = tuple(
        sorted(
            (min(index[u], index[v]), max(index[u], index[v]))
            for u, v in graph.edges()
        )
    )
    return (labels, edges)


def _search(graph: LabeledGraph, colors: dict[VertexId, tuple]) -> Certificate:
    refined = _refine(graph, colors)
    classes: dict[int, list[VertexId]] = {}
    for vertex, color in refined.items():
        classes.setdefault(color, []).append(vertex)
    # Discrete partition: single candidate ordering.
    if all(len(members) == 1 for members in classes.values()):
        order = [
            members[0] for _, members in sorted(classes.items())
        ]
        return _certificate_for_order(graph, order)
    # Individualise the first non-singleton class (smallest colour).
    target_color = min(c for c, members in classes.items() if len(members) > 1)
    best: Certificate | None = None
    for vertex in classes[target_color]:
        branched = {v: (refined[v],) for v in graph.vertices()}
        branched[vertex] = (refined[vertex], "*")
        candidate = _search(graph, branched)
        if best is None or candidate < best:
            best = candidate
    assert best is not None
    return best


def canonical_certificate(graph: LabeledGraph) -> Certificate:
    """Return an isomorphism-invariant certificate of *graph*.

    Two labelled graphs are isomorphic iff their certificates are equal.
    """
    if graph.num_vertices == 0:
        return ((), ())
    initial = {v: (graph.label(v),) for v in graph.vertices()}
    return _search(graph, initial)


def canonical_key(graph: LabeledGraph) -> str:
    """A hashable string form of :func:`canonical_certificate`."""
    labels, edges = canonical_certificate(graph)
    label_part = ",".join(labels)
    edge_part = ";".join(f"{u}-{v}" for u, v in edges)
    return f"{label_part}|{edge_part}"


def are_isomorphic(first: LabeledGraph, second: LabeledGraph) -> bool:
    """Exact isomorphism test for small labelled graphs."""
    if first.signature() != second.signature():
        return False
    return canonical_certificate(first) == canonical_certificate(second)
