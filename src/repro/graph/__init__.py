"""Labelled-graph substrate: graphs, canonical forms, databases, IO."""

from .canonical import are_isomorphic, canonical_certificate, canonical_key
from .database import AppliedUpdate, BatchUpdate, DatabaseError, GraphDatabase
from .statistics import DatabaseStatistics, database_statistics, describe, label_entropy
from .labeled_graph import (
    Edge,
    EdgeLabel,
    GraphError,
    Label,
    LabeledGraph,
    VertexId,
    edge_key,
    normalize_edge_label,
)

__all__ = [
    "AppliedUpdate",
    "BatchUpdate",
    "DatabaseError",
    "DatabaseStatistics",
    "Edge",
    "EdgeLabel",
    "GraphDatabase",
    "GraphError",
    "Label",
    "LabeledGraph",
    "VertexId",
    "are_isomorphic",
    "canonical_certificate",
    "canonical_key",
    "database_statistics",
    "describe",
    "edge_key",
    "label_entropy",
    "normalize_edge_label",
]
