"""Serialisation of graphs and databases.

Two plain-text formats are supported:

* **adjacency text** — a line-oriented format mirroring the classic
  graph-transaction files used by frequent subgraph miners (gSpan-style):

  .. code-block:: text

      t # 0
      v 0 C
      v 1 O
      e 0 1

* **JSON** — a structured format convenient for round-tripping whole
  databases together with metadata.

Both formats preserve vertex identities (as the integers they are written
with) and graph order.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Iterator
from pathlib import Path

from .database import GraphDatabase
from .labeled_graph import LabeledGraph


class FormatError(Exception):
    """Raised when parsing malformed graph text."""


def _vertex_order_key(vertex):
    """Deterministic vertex ordering: integers numerically, the rest by
    repr.  Numeric ordering keeps serialisation idempotent for the
    common dense-integer vertex ids (repr order would interleave
    "10" between "1" and "2")."""
    if isinstance(vertex, int):
        return (0, vertex, "")
    return (1, 0, repr(vertex))


# ----------------------------------------------------------------------
# gSpan-style transaction format
# ----------------------------------------------------------------------
def dumps_transactions(graphs: Iterable[LabeledGraph]) -> str:
    """Serialise *graphs* in gSpan transaction format."""
    lines: list[str] = []
    for index, graph in enumerate(graphs):
        lines.append(f"t # {index}")
        order = sorted(graph.vertices(), key=_vertex_order_key)
        position = {v: i for i, v in enumerate(order)}
        for vertex in order:
            lines.append(f"v {position[vertex]} {graph.label(vertex)}")
        for u, v in sorted(graph.edges(), key=lambda e: (position[e[0]], position[e[1]])):
            a, b = sorted((position[u], position[v]))
            lines.append(f"e {a} {b}")
    lines.append("t # -1")
    return "\n".join(lines) + "\n"


def loads_transactions(text: str) -> list[LabeledGraph]:
    """Parse gSpan transaction text into a list of graphs."""
    graphs: list[LabeledGraph] = []
    current: LabeledGraph | None = None
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        kind = parts[0]
        if kind == "t":
            if current is not None and (current.num_vertices or not graphs):
                graphs.append(current)
            if parts[-1] == "-1":
                current = None
                break
            current = LabeledGraph(name=f"G{len(graphs)}")
        elif kind == "v":
            if current is None:
                raise FormatError(f"line {line_no}: vertex outside transaction")
            if len(parts) != 3:
                raise FormatError(f"line {line_no}: malformed vertex line {line!r}")
            current.add_vertex(int(parts[1]), parts[2])
        elif kind == "e":
            if current is None:
                raise FormatError(f"line {line_no}: edge outside transaction")
            if len(parts) != 3:
                raise FormatError(f"line {line_no}: malformed edge line {line!r}")
            current.add_edge(int(parts[1]), int(parts[2]))
        else:
            raise FormatError(f"line {line_no}: unknown record kind {kind!r}")
    if current is not None and current.num_vertices:
        graphs.append(current)
    return graphs


def write_transactions(path: str | Path, graphs: Iterable[LabeledGraph]) -> None:
    Path(path).write_text(dumps_transactions(graphs))


def read_transactions(path: str | Path) -> list[LabeledGraph]:
    return loads_transactions(Path(path).read_text())


# ----------------------------------------------------------------------
# JSON format
# ----------------------------------------------------------------------
def graph_to_dict(graph: LabeledGraph) -> dict:
    """JSON-ready dict representation of a single graph."""
    order = sorted(graph.vertices(), key=_vertex_order_key)
    position = {v: i for i, v in enumerate(order)}
    return {
        "name": graph.name,
        "labels": [graph.label(v) for v in order],
        "edges": sorted(
            sorted((position[u], position[v])) for u, v in graph.edges()
        ),
    }


def graph_from_dict(payload: dict) -> LabeledGraph:
    """Inverse of :func:`graph_to_dict`."""
    try:
        labels = payload["labels"]
        edges = payload["edges"]
    except KeyError as exc:
        raise FormatError(f"missing key in graph payload: {exc}") from None
    graph = LabeledGraph(name=payload.get("name"))
    for index, label in enumerate(labels):
        graph.add_vertex(index, label)
    for u, v in edges:
        graph.add_edge(u, v)
    return graph


def database_to_json(database: GraphDatabase) -> str:
    payload = {
        "format": "repro-graphdb-v1",
        "graphs": {
            str(graph_id): graph_to_dict(graph)
            for graph_id, graph in database.items()
        },
    }
    return json.dumps(payload)


def database_from_json(text: str, *, into=None) -> GraphDatabase:
    """Parse a ``repro-graphdb-v1`` payload into a graph store.

    *into* is any :class:`~repro.store.base.GraphStore` to hydrate
    (defaults to a fresh in-memory :class:`GraphDatabase`); ids are
    re-created faithfully through the store's public allocator
    (:meth:`~repro.store.base.GraphStore.reserve_through`).
    """
    payload = json.loads(text)
    if payload.get("format") != "repro-graphdb-v1":
        raise FormatError(f"unsupported format tag: {payload.get('format')!r}")
    database = GraphDatabase() if into is None else into
    entries = sorted(payload["graphs"].items(), key=lambda kv: int(kv[0]))
    for graph_id_text, graph_payload in entries:
        graph_id = int(graph_id_text)
        graph = graph_from_dict(graph_payload)
        database.reserve_through(graph_id)
        assigned = database.add(graph)
        if assigned != graph_id:
            raise FormatError(
                f"non-monotonic graph ids in payload near {graph_id}"
            )
    return database


def write_database(path: str | Path, database: GraphDatabase) -> None:
    Path(path).write_text(database_to_json(database))


def read_database(path: str | Path, *, into=None) -> GraphDatabase:
    return database_from_json(Path(path).read_text(), into=into)


def iter_graph_chunks(
    graphs: Iterable[LabeledGraph], chunk_size: int
) -> Iterator[list[LabeledGraph]]:
    """Yield graphs in chunks of *chunk_size* (last chunk may be short)."""
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    chunk: list[LabeledGraph] = []
    for graph in graphs:
        chunk.append(graph)
        if len(chunk) == chunk_size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk
