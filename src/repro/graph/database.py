"""Graph database and batch updates.

A :class:`GraphDatabase` is a collection of small/medium labelled data
graphs, each with a unique integer ID (paper, Section 2.1).  Evolution is
modelled as a :class:`BatchUpdate` — a set of graph insertions (Δ⁺) and
deletions (Δ⁻) applied atomically (paper, Section 3.1: database changes
arrive as periodic batches rather than as a stream).

:class:`GraphDatabase` is the in-memory implementation of the
:class:`~repro.store.base.GraphStore` contract (docs/STORAGE.md); the
out-of-core SQLite backend lives in :mod:`repro.store.sqlite` and must
behave identically on every operation the contract names.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

from ..store.base import GraphStore
from .labeled_graph import LabeledGraph


class DatabaseError(Exception):
    """Raised for invalid database operations (duplicate/missing IDs...)."""


@dataclass(frozen=True)
class BatchUpdate:
    """A batch update ΔD: graphs to insert and IDs of graphs to delete.

    Attributes
    ----------
    insertions:
        New data graphs (Δ⁺).  IDs are assigned by the database when the
        batch is applied.
    deletions:
        IDs of existing graphs to remove (Δ⁻).
    """

    insertions: tuple[LabeledGraph, ...] = ()
    deletions: tuple[int, ...] = ()

    @classmethod
    def of(
        cls,
        insertions: Iterable[LabeledGraph] = (),
        deletions: Iterable[int] = (),
    ) -> "BatchUpdate":
        return cls(tuple(insertions), tuple(deletions))

    @property
    def num_insertions(self) -> int:
        return len(self.insertions)

    @property
    def num_deletions(self) -> int:
        return len(self.deletions)

    def is_empty(self) -> bool:
        return not self.insertions and not self.deletions

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<BatchUpdate +{len(self.insertions)} -{len(self.deletions)}>"


@dataclass
class AppliedUpdate:
    """Record of a batch application: which IDs were added and removed."""

    inserted_ids: list[int] = field(default_factory=list)
    deleted_ids: list[int] = field(default_factory=list)
    deleted_graphs: dict[int, LabeledGraph] = field(default_factory=dict)


class GraphDatabase(GraphStore):
    """A repository of labelled data graphs indexed by integer ID.

    Examples
    --------
    >>> from repro.graph import LabeledGraph
    >>> db = GraphDatabase()
    >>> gid = db.add(LabeledGraph.from_edges({0: "C", 1: "O"}, [(0, 1)]))
    >>> len(db)
    1
    >>> db[gid].num_edges
    1
    """

    def __init__(self, graphs: Iterable[LabeledGraph] = ()) -> None:
        self._graphs: dict[int, LabeledGraph] = {}
        self._next_id = 0
        for graph in graphs:
            self.add(graph)

    # ------------------------------------------------------------------
    # basic container behaviour
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._graphs)

    def __contains__(self, graph_id: int) -> bool:
        return graph_id in self._graphs

    def __getitem__(self, graph_id: int) -> LabeledGraph:
        try:
            return self._graphs[graph_id]
        except KeyError:
            raise DatabaseError(f"no graph with id {graph_id}") from None

    def __iter__(self) -> Iterator[int]:
        return iter(self._graphs)

    def ids(self) -> list[int]:
        """All graph IDs in ascending order."""
        return sorted(self._graphs)

    def graphs(self) -> Iterator[LabeledGraph]:
        for graph_id in self.ids():
            yield self._graphs[graph_id]

    def items(self) -> Iterator[tuple[int, LabeledGraph]]:
        for graph_id in self.ids():
            yield graph_id, self._graphs[graph_id]

    # ------------------------------------------------------------------
    # id allocation (the public surface; see GraphStore)
    # ------------------------------------------------------------------
    def next_graph_id(self) -> int:
        """The id the next :meth:`add` will assign."""
        return self._next_id

    def reserve_through(self, graph_id: int) -> None:
        """Advance the allocator so the next assigned id is ≥ *graph_id*."""
        self._next_id = max(self._next_id, graph_id)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add(self, graph: LabeledGraph) -> int:
        """Insert *graph* and return its assigned ID."""
        graph_id = self._next_id
        self._next_id += 1
        named = graph if graph.name else graph.copy(name=f"G{graph_id}")
        self._graphs[graph_id] = named
        return graph_id

    def remove(self, graph_id: int) -> LabeledGraph:
        """Delete and return the graph with *graph_id*."""
        try:
            return self._graphs.pop(graph_id)
        except KeyError:
            raise DatabaseError(f"no graph with id {graph_id}") from None

    def apply(self, update: BatchUpdate) -> AppliedUpdate:
        """Apply ΔD in place (``D ← D ⊕ ΔD``) and return the applied record.

        Deletions are validated before anything is mutated so a bad batch
        leaves the database untouched.
        """
        missing = [gid for gid in update.deletions if gid not in self._graphs]
        if missing:
            raise DatabaseError(f"cannot delete missing graph ids: {missing}")
        record = AppliedUpdate()
        for graph_id in update.deletions:
            record.deleted_graphs[graph_id] = self._graphs.pop(graph_id)
            record.deleted_ids.append(graph_id)
        for graph in update.insertions:
            record.inserted_ids.append(self.add(graph))
        return record

    def updated(self, update: BatchUpdate) -> "GraphDatabase":
        """Return a new database equal to ``D ⊕ ΔD`` without mutating ``D``.

        Graph IDs of surviving graphs are preserved, and newly inserted
        graphs receive fresh IDs, mirroring :meth:`apply`.
        """
        clone = self.copy()
        clone.apply(update)
        return clone

    def copy(self) -> "GraphDatabase":
        """Return a shallow-structural copy (graphs are shared, IDs kept)."""
        clone = GraphDatabase()
        clone._graphs = dict(self._graphs)
        clone._next_id = self._next_id
        return clone

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def total_vertices(self) -> int:
        return sum(g.num_vertices for g in self._graphs.values())

    def total_edges(self) -> int:
        return sum(g.num_edges for g in self._graphs.values())

    def vertex_label_alphabet(self) -> set[str]:
        alphabet: set[str] = set()
        for graph in self._graphs.values():
            alphabet |= graph.vertex_label_set()
        return alphabet

    def edge_label_document_frequency(self) -> dict[tuple[str, str], int]:
        """For each edge label, the number of graphs containing it.

        This is the numerator of the paper's label coverage
        ``lcov(e, D) = |L(e, D)| / |D|``.
        """
        frequency: dict[tuple[str, str], int] = {}
        for graph in self._graphs.values():
            for edge_label in graph.edge_label_set():
                frequency[edge_label] = frequency.get(edge_label, 0) + 1
        return frequency

    def summary(self) -> dict[str, float]:
        """Aggregate statistics used in logs and experiment headers."""
        count = len(self._graphs)
        if count == 0:
            return {
                "graphs": 0,
                "avg_vertices": 0.0,
                "avg_edges": 0.0,
                "labels": 0,
            }
        return {
            "graphs": count,
            "avg_vertices": self.total_vertices() / count,
            "avg_edges": self.total_edges() / count,
            "labels": len(self.vertex_label_alphabet()),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<GraphDatabase |D|={len(self._graphs)}>"
