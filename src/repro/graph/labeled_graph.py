"""Labelled undirected simple graphs.

This module provides :class:`LabeledGraph`, the fundamental data structure
used throughout the reproduction.  Data graphs, canned patterns, cluster
summary graphs and visual subgraph queries are all undirected simple graphs
with labelled vertices (paper, Section 2.1).  Edge labels are derived from
their endpoint labels: ``l(u, v) = (l(u), l(v))`` normalised so that the
smaller label comes first.

The implementation is a dict-of-sets adjacency structure optimised for the
access patterns of the algorithms in this repository: neighbourhood
iteration (VF2), degree queries (random walks, graphlet counting) and
label lookups (coverage metrics, canonicalisation).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator
from typing import Any

VertexId = Hashable
Label = str
Edge = tuple[VertexId, VertexId]
EdgeLabel = tuple[Label, Label]


class GraphError(Exception):
    """Raised for structurally invalid graph operations."""


def edge_key(u: VertexId, v: VertexId) -> Edge:
    """Return the canonical (order-independent) key for an undirected edge.

    The two endpoints are sorted by ``repr`` so that heterogeneous vertex
    identifiers (ints mixed with strings) still order deterministically.
    """
    if u == v:
        raise GraphError(f"self-loops are not allowed: {u!r}")
    a, b = sorted((u, v), key=repr)
    return (a, b)


def normalize_edge_label(la: Label, lb: Label) -> EdgeLabel:
    """Return the order-independent label of an edge between labels *la*, *lb*."""
    return (la, lb) if la <= lb else (lb, la)


class LabeledGraph:
    """An undirected simple graph with labelled vertices.

    Parameters
    ----------
    name:
        Optional human-readable identifier (e.g. a database graph ID).

    Examples
    --------
    >>> g = LabeledGraph()
    >>> g.add_vertex(0, "C")
    >>> g.add_vertex(1, "O")
    >>> g.add_edge(0, 1)
    >>> g.num_vertices, g.num_edges
    (2, 1)
    >>> g.edge_label(0, 1)
    ('C', 'O')
    """

    __slots__ = ("name", "_labels", "_adj", "_num_edges")

    def __init__(self, name: str | None = None) -> None:
        self.name = name
        self._labels: dict[VertexId, Label] = {}
        self._adj: dict[VertexId, set[VertexId]] = {}
        self._num_edges = 0

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        labels: dict[VertexId, Label],
        edges: Iterable[tuple[VertexId, VertexId]],
        name: str | None = None,
    ) -> "LabeledGraph":
        """Build a graph from a label map and an edge list.

        Vertices present in *labels* but not incident to any edge are kept
        as isolated vertices.
        """
        graph = cls(name=name)
        for vertex, label in labels.items():
            graph.add_vertex(vertex, label)
        for u, v in edges:
            graph.add_edge(u, v)
        return graph

    def copy(self, name: str | None = None) -> "LabeledGraph":
        """Return a deep structural copy of this graph."""
        clone = LabeledGraph(name=self.name if name is None else name)
        clone._labels = dict(self._labels)
        clone._adj = {v: set(nbrs) for v, nbrs in self._adj.items()}
        clone._num_edges = self._num_edges
        return clone

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add_vertex(self, vertex: VertexId, label: Label) -> None:
        """Add *vertex* with *label*; relabelling an existing vertex is an error."""
        if vertex in self._labels:
            if self._labels[vertex] != label:
                raise GraphError(
                    f"vertex {vertex!r} already has label {self._labels[vertex]!r}"
                )
            return
        self._labels[vertex] = label
        self._adj[vertex] = set()

    def add_edge(self, u: VertexId, v: VertexId) -> None:
        """Add the undirected edge ``(u, v)``.  Both endpoints must exist."""
        if u == v:
            raise GraphError(f"self-loops are not allowed: {u!r}")
        if u not in self._labels or v not in self._labels:
            missing = u if u not in self._labels else v
            raise GraphError(f"cannot add edge: vertex {missing!r} does not exist")
        if v in self._adj[u]:
            return
        self._adj[u].add(v)
        self._adj[v].add(u)
        self._num_edges += 1

    def remove_edge(self, u: VertexId, v: VertexId) -> None:
        """Remove the undirected edge ``(u, v)``; missing edges are an error."""
        if u not in self._adj or v not in self._adj[u]:
            raise GraphError(f"edge ({u!r}, {v!r}) does not exist")
        self._adj[u].discard(v)
        self._adj[v].discard(u)
        self._num_edges -= 1

    def remove_vertex(self, vertex: VertexId) -> None:
        """Remove *vertex* and every incident edge."""
        if vertex not in self._labels:
            raise GraphError(f"vertex {vertex!r} does not exist")
        for neighbor in list(self._adj[vertex]):
            self.remove_edge(vertex, neighbor)
        del self._adj[vertex]
        del self._labels[vertex]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self._labels)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    @property
    def size(self) -> int:
        """Paper's ``|G|``: the number of edges (Section 2.1)."""
        return self._num_edges

    def __len__(self) -> int:
        return len(self._labels)

    def __contains__(self, vertex: VertexId) -> bool:
        return vertex in self._labels

    def has_edge(self, u: VertexId, v: VertexId) -> bool:
        return u in self._adj and v in self._adj[u]

    def vertices(self) -> Iterator[VertexId]:
        return iter(self._labels)

    def edges(self) -> Iterator[Edge]:
        """Iterate over edges, each reported once with a canonical key."""
        seen: set[Edge] = set()
        for u, nbrs in self._adj.items():
            for v in nbrs:
                key = edge_key(u, v)
                if key not in seen:
                    seen.add(key)
                    yield key

    def neighbors(self, vertex: VertexId) -> set[VertexId]:
        try:
            return self._adj[vertex]
        except KeyError:
            raise GraphError(f"vertex {vertex!r} does not exist") from None

    def degree(self, vertex: VertexId) -> int:
        return len(self.neighbors(vertex))

    def label(self, vertex: VertexId) -> Label:
        try:
            return self._labels[vertex]
        except KeyError:
            raise GraphError(f"vertex {vertex!r} does not exist") from None

    def labels(self) -> dict[VertexId, Label]:
        """Return a copy of the vertex → label map."""
        return dict(self._labels)

    def vertex_label_set(self) -> set[Label]:
        return set(self._labels.values())

    def vertex_label_multiset(self) -> dict[Label, int]:
        counts: dict[Label, int] = {}
        for label in self._labels.values():
            counts[label] = counts.get(label, 0) + 1
        return counts

    def edge_label(self, u: VertexId, v: VertexId) -> EdgeLabel:
        if not self.has_edge(u, v):
            raise GraphError(f"edge ({u!r}, {v!r}) does not exist")
        return normalize_edge_label(self._labels[u], self._labels[v])

    def edge_label_set(self) -> set[EdgeLabel]:
        return {self.edge_label(u, v) for u, v in self.edges()}

    def edge_label_multiset(self) -> dict[EdgeLabel, int]:
        counts: dict[EdgeLabel, int] = {}
        for u, v in self.edges():
            lab = self.edge_label(u, v)
            counts[lab] = counts.get(lab, 0) + 1
        return counts

    def density(self) -> float:
        """Graph density ``2|E| / (|V|(|V|-1))`` used in cognitive load."""
        n = self.num_vertices
        if n < 2:
            return 0.0
        return 2.0 * self._num_edges / (n * (n - 1))

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def subgraph(self, vertices: Iterable[VertexId]) -> "LabeledGraph":
        """Return the vertex-induced subgraph on *vertices*."""
        keep = set(vertices)
        missing = keep - set(self._labels)
        if missing:
            raise GraphError(f"vertices not in graph: {sorted(map(repr, missing))}")
        sub = LabeledGraph(name=self.name)
        for vertex in keep:
            sub.add_vertex(vertex, self._labels[vertex])
        for vertex in keep:
            for neighbor in self._adj[vertex] & keep:
                sub.add_edge(vertex, neighbor)
        return sub

    def edge_subgraph(self, edges: Iterable[Edge]) -> "LabeledGraph":
        """Return the subgraph consisting of *edges* and their endpoints."""
        sub = LabeledGraph(name=self.name)
        for u, v in edges:
            if not self.has_edge(u, v):
                raise GraphError(f"edge ({u!r}, {v!r}) does not exist")
            sub.add_vertex(u, self._labels[u])
            sub.add_vertex(v, self._labels[v])
            sub.add_edge(u, v)
        return sub

    def connected_components(self) -> list[set[VertexId]]:
        """Return connected components as vertex sets (BFS)."""
        unvisited = set(self._labels)
        components: list[set[VertexId]] = []
        while unvisited:
            root = next(iter(unvisited))
            component = {root}
            frontier = [root]
            unvisited.discard(root)
            while frontier:
                current = frontier.pop()
                for neighbor in self._adj[current]:
                    if neighbor in unvisited:
                        unvisited.discard(neighbor)
                        component.add(neighbor)
                        frontier.append(neighbor)
            components.append(component)
        return components

    def is_connected(self) -> bool:
        if self.num_vertices == 0:
            return True
        return len(self.connected_components()) == 1

    def is_tree(self) -> bool:
        """True iff the graph is connected and acyclic."""
        return (
            self.num_vertices > 0
            and self._num_edges == self.num_vertices - 1
            and self.is_connected()
        )

    def relabeled(self, start: int = 0) -> "LabeledGraph":
        """Return an isomorphic copy with vertices renamed 0..n-1.

        Vertices are renumbered in a deterministic (sorted-by-repr) order so
        that the result does not depend on dict iteration history.
        """
        order = sorted(self._labels, key=repr)
        mapping = {old: start + i for i, old in enumerate(order)}
        clone = LabeledGraph(name=self.name)
        for old, new in mapping.items():
            clone.add_vertex(new, self._labels[old])
        for u, v in self.edges():
            clone.add_edge(mapping[u], mapping[v])
        return clone

    # ------------------------------------------------------------------
    # dunder / misc
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = f" {self.name!r}" if self.name else ""
        return (
            f"<LabeledGraph{tag} |V|={self.num_vertices} |E|={self._num_edges}>"
        )

    def signature(self) -> tuple[Any, ...]:
        """A cheap isomorphism-invariant fingerprint.

        Two isomorphic graphs always have equal signatures; unequal
        signatures prove non-isomorphism.  Used to prefilter expensive
        isomorphism checks.
        """
        degree_label = sorted(
            (self._labels[v], len(self._adj[v])) for v in self._labels
        )
        edge_labels = sorted(self.edge_label_multiset().items())
        return (self.num_vertices, self._num_edges, tuple(degree_label), tuple(edge_labels))
