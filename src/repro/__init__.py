"""repro — a full reproduction of MIDAS (SIGMOD 2021).

MIDAS maintains the *canned patterns* of a visual graph query interface
as the underlying graph database evolves, so that the displayed patterns
keep high subgraph/label coverage and diversity at low cognitive load —
without re-running the full CATAPULT selection from scratch.

Quickstart
----------
The supported entry points live in :mod:`repro.api`:

>>> import repro
>>> from repro.datasets import pubchem_like, family_injection
>>> db = pubchem_like(150, seed=1)
>>> midas = repro.api.bootstrap(db)                  # doctest: +SKIP
>>> report = repro.api.maintain(midas, family_injection(50, seed=2))  # doctest: +SKIP
>>> report.is_major                                  # doctest: +SKIP
True

Pass an :class:`~repro.execution.ExecutionConfig` to control *how* the
kernels run — worker processes, result caching, deadlines, degradation:

>>> fast = repro.ExecutionConfig(workers=4, cache=True)  # doctest: +SKIP
>>> result = repro.api.select(db, execution=fast)        # doctest: +SKIP

Package map
-----------
* :mod:`repro.api` — the supported facade: open_store / select /
  bootstrap / maintain;
* :mod:`repro.execution` — the shared execution policy (workers, cache,
  deadline_ms, degrade);
* :mod:`repro.graph` — labelled graphs, canonical forms, databases, IO;
* :mod:`repro.store` — the pluggable graph-store backends: the
  :class:`GraphStore` API, :func:`open_store`, and the out-of-core
  SQLite backend (docs/STORAGE.md);
* :mod:`repro.datasets` — synthetic molecule datasets + evolution batches;
* :mod:`repro.isomorphism` — VF2 subgraph isomorphism;
* :mod:`repro.ged` — graph edit distance bounds and exact A*;
* :mod:`repro.trees` — canonical trees, (closed) subtree mining, FCT
  maintenance;
* :mod:`repro.clustering` — k-means++, MCCS, cluster maintenance;
* :mod:`repro.csg` — cluster summary graphs;
* :mod:`repro.graphlets` — graphlet counting and distributions;
* :mod:`repro.index` — FCT-Index and IFE-Index;
* :mod:`repro.patterns` — canned patterns, budgets and quality metrics;
* :mod:`repro.catapult` — the CATAPULT / CATAPULT++ selectors;
* :mod:`repro.midas` — the MIDAS maintainer and baselines;
* :mod:`repro.parallel` — the deterministic kernel process pool;
* :mod:`repro.cache` — canonical-form result caches + invalidation;
* :mod:`repro.covindex` — the filter-then-verify coverage engine;
* :mod:`repro.check` — differential oracles, fuzzer, invariant guards;
* :mod:`repro.serve` — the snapshot-isolated pattern-serving service
  (``python -m repro serve``);
* :mod:`repro.workload` — query workloads and the simulated user study;
* :mod:`repro.bench` — the experiment drivers behind ``benchmarks/``.
"""

from .catapult import Catapult, CatapultConfig, CatapultPlusPlus
from .execution import ExecutionConfig
from .graph import BatchUpdate, GraphDatabase, LabeledGraph
from .midas import (
    Midas,
    MidasConfig,
    NoMaintainBaseline,
    RandomSwapMaintainer,
)
from .patterns import PatternBudget, PatternSet
from .store import GraphStore, open_store
from . import api

__version__ = "1.0.0"

__all__ = [
    "BatchUpdate",
    "Catapult",
    "CatapultConfig",
    "CatapultPlusPlus",
    "ExecutionConfig",
    "GraphDatabase",
    "GraphStore",
    "LabeledGraph",
    "Midas",
    "MidasConfig",
    "NoMaintainBaseline",
    "PatternBudget",
    "PatternSet",
    "RandomSwapMaintainer",
    "api",
    "open_store",
    "__version__",
]
