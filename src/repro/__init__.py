"""repro — a full reproduction of MIDAS (SIGMOD 2021).

MIDAS maintains the *canned patterns* of a visual graph query interface
as the underlying graph database evolves, so that the displayed patterns
keep high subgraph/label coverage and diversity at low cognitive load —
without re-running the full CATAPULT selection from scratch.

Quickstart
----------
>>> from repro import Midas, MidasConfig
>>> from repro.datasets import pubchem_like, family_injection
>>> db = pubchem_like(150, seed=1)
>>> midas = Midas.bootstrap(db, MidasConfig())      # doctest: +SKIP
>>> report = midas.apply_update(family_injection(50, seed=2))  # doctest: +SKIP
>>> report.is_major                                  # doctest: +SKIP
True

Package map
-----------
* :mod:`repro.graph` — labelled graphs, canonical forms, databases, IO;
* :mod:`repro.datasets` — synthetic molecule datasets + evolution batches;
* :mod:`repro.isomorphism` — VF2 subgraph isomorphism;
* :mod:`repro.ged` — graph edit distance bounds and exact A*;
* :mod:`repro.trees` — canonical trees, (closed) subtree mining, FCT
  maintenance;
* :mod:`repro.clustering` — k-means++, MCCS, cluster maintenance;
* :mod:`repro.csg` — cluster summary graphs;
* :mod:`repro.graphlets` — graphlet counting and distributions;
* :mod:`repro.index` — FCT-Index and IFE-Index;
* :mod:`repro.patterns` — canned patterns, budgets and quality metrics;
* :mod:`repro.catapult` — the CATAPULT / CATAPULT++ selectors;
* :mod:`repro.midas` — the MIDAS maintainer and baselines;
* :mod:`repro.workload` — query workloads and the simulated user study;
* :mod:`repro.bench` — the experiment drivers behind ``benchmarks/``.
"""

from .catapult import Catapult, CatapultConfig, CatapultPlusPlus
from .graph import BatchUpdate, GraphDatabase, LabeledGraph
from .midas import (
    Midas,
    MidasConfig,
    NoMaintainBaseline,
    RandomSwapMaintainer,
)
from .patterns import PatternBudget, PatternSet

__version__ = "1.0.0"

__all__ = [
    "BatchUpdate",
    "Catapult",
    "CatapultConfig",
    "CatapultPlusPlus",
    "GraphDatabase",
    "LabeledGraph",
    "Midas",
    "MidasConfig",
    "NoMaintainBaseline",
    "PatternBudget",
    "PatternSet",
    "RandomSwapMaintainer",
    "__version__",
]
