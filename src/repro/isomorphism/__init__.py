"""Subgraph isomorphism substrate (VF2 with vertex labels)."""

from .invariants import invariant_prefilter, multiset_dominates, prune_by_counts
from .matcher import (
    contains,
    count_embeddings,
    covered_graphs,
    find_embedding,
    find_embeddings,
)
from .vf2 import Assignment, Domains, VF2Matcher

__all__ = [
    "Assignment",
    "Domains",
    "VF2Matcher",
    "contains",
    "count_embeddings",
    "covered_graphs",
    "find_embedding",
    "find_embeddings",
    "invariant_prefilter",
    "multiset_dominates",
    "prune_by_counts",
]
