"""Subgraph isomorphism substrate (VF2 with vertex labels)."""

from .matcher import (
    contains,
    count_embeddings,
    covered_graphs,
    find_embedding,
    find_embeddings,
)
from .vf2 import Assignment, VF2Matcher

__all__ = [
    "Assignment",
    "VF2Matcher",
    "contains",
    "count_embeddings",
    "covered_graphs",
    "find_embedding",
    "find_embeddings",
]
