"""VF2-style subgraph isomorphism for labelled graphs.

The paper relies on (sub)graph isomorphism in many places: subgraph
coverage (``scov``), cluster coverage, promising-candidate pruning and the
FCT/IFE index prefilters (it cites the VF2 algorithm of Cordella et al.
for this purpose, Section 5.1).  This module implements VF2 from scratch
with:

* vertex-label-aware feasibility rules,
* both **monomorphism** (non-induced subgraph: every pattern edge must map
  to a host edge; extra host edges are fine) and **induced** semantics,
* existence tests, match iteration and embedding counting,
* an inexpensive invariant prefilter (label multisets, degree sequences)
  that resolves most negative queries without search — shared with the
  index layers via :mod:`repro.isomorphism.invariants`,
* optional precomputed **candidate domains** (pattern vertex → admissible
  host vertices) that seed the search with the signature-based pruning of
  the coverage engine (:mod:`repro.covindex`).

Monomorphism is the semantics of "query graph contains pattern" in visual
query formulation: dragging a canned pattern onto the canvas contributes
its vertices and edges, and the query may add more edges between them.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator, Mapping, Set

from ..graph.labeled_graph import LabeledGraph, VertexId
from ..obs import get_registry
from ..resilience.budget import CHECK_STRIDE, current_budget
from ..resilience.faults import trip
from .invariants import invariant_prefilter

Assignment = dict[VertexId, VertexId]

#: Candidate domains: pattern vertex → host vertices it may map to.
#: Vertices absent from the mapping are unrestricted.
Domains = Mapping[VertexId, Set[VertexId]]


class VF2Matcher:
    """Match a *pattern* graph into a *host* graph.

    Parameters
    ----------
    pattern, host:
        Labelled graphs.  ``pattern`` must not be larger than ``host`` for
        a match to exist.
    induced:
        If True, require an induced embedding (non-edges of the pattern
        must map to non-edges of the host).  Default False = monomorphism.
    node_match:
        Optional custom predicate ``(pattern_label, host_label) -> bool``;
        defaults to label equality.
    domains:
        Optional precomputed candidate domains (pattern vertex → set of
        admissible host vertices), e.g. the per-vertex signature domains
        of the :mod:`repro.covindex` engine.  Domains must be *sound*
        (never exclude a host vertex that participates in an embedding);
        they shrink the search tree without changing any result.
    """

    def __init__(
        self,
        pattern: LabeledGraph,
        host: LabeledGraph,
        induced: bool = False,
        node_match: Callable[[str, str], bool] | None = None,
        domains: Domains | None = None,
    ) -> None:
        self.pattern = pattern
        self.host = host
        self.induced = induced
        self._node_match = node_match or (lambda a, b: a == b)
        self._domains = domains
        # Candidate order: most-constrained pattern vertices first
        # (high degree, rare label), then connectivity order so each new
        # vertex is adjacent to an already-mapped one when possible.
        self._order = self._matching_order()

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def has_match(self) -> bool:
        """True iff at least one embedding of pattern into host exists."""
        if not self._prefilter():
            get_registry().counter("vf2.prefilter_cutoffs").add(1)
            return False
        for _ in self._match():
            return True
        return False

    def matches(self) -> Iterator[Assignment]:
        """Yield embeddings as pattern-vertex → host-vertex dicts."""
        if not self._prefilter():
            get_registry().counter("vf2.prefilter_cutoffs").add(1)
            return
        yield from self._match()

    def count_matches(self, limit: int | None = None) -> int:
        """Count embeddings, optionally stopping at *limit*."""
        if not self._prefilter():
            get_registry().counter("vf2.prefilter_cutoffs").add(1)
            return 0
        count = 0
        for _ in self._match():
            count += 1
            if limit is not None and count >= limit:
                break
        return count

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _prefilter(self) -> bool:
        """Cheap necessary conditions for a match to exist."""
        get_registry().counter("vf2.calls").add(1)
        if not invariant_prefilter(self.pattern, self.host):
            return False
        if self._domains is not None:
            for vertex in self.pattern.vertices():
                domain = self._domains.get(vertex)
                if domain is not None and not domain:
                    return False
        return True

    def _matching_order(self) -> list[VertexId]:
        pattern = self.pattern
        if pattern.num_vertices == 0:
            return []
        host_label_counts = self.host.vertex_label_multiset()

        def rarity(vertex: VertexId) -> tuple:
            return (
                host_label_counts.get(pattern.label(vertex), 0),
                -pattern.degree(vertex),
                repr(vertex),
            )

        remaining = set(pattern.vertices())
        order: list[VertexId] = []
        frontier: set[VertexId] = set()
        while remaining:
            if frontier:
                nxt = min(frontier, key=rarity)
            else:
                nxt = min(remaining, key=rarity)
            order.append(nxt)
            remaining.discard(nxt)
            frontier.discard(nxt)
            frontier |= pattern.neighbors(nxt) & remaining
        return order

    def _candidates(
        self, pattern_vertex: VertexId, mapping: Assignment, used: set[VertexId]
    ) -> Iterator[VertexId]:
        """Candidate host vertices for *pattern_vertex* given partial map."""
        pattern, host = self.pattern, self.host
        domain = (
            self._domains.get(pattern_vertex)
            if self._domains is not None
            else None
        )
        mapped_neighbors = [
            n for n in pattern.neighbors(pattern_vertex) if n in mapping
        ]
        if mapped_neighbors:
            # Intersect host neighbourhoods of already-mapped neighbours.
            first = mapping[mapped_neighbors[0]]
            candidate_pool = set(host.neighbors(first))
            for other in mapped_neighbors[1:]:
                candidate_pool &= host.neighbors(mapping[other])
            if domain is not None:
                candidate_pool &= set(domain)
        elif domain is not None:
            candidate_pool = set(domain)
        else:
            candidate_pool = set(host.vertices())
        want_label = pattern.label(pattern_vertex)
        for host_vertex in candidate_pool:
            if host_vertex in used:
                continue
            if not self._node_match(want_label, host.label(host_vertex)):
                continue
            yield host_vertex

    def _feasible(
        self, pattern_vertex: VertexId, host_vertex: VertexId, mapping: Assignment
    ) -> bool:
        pattern, host = self.pattern, self.host
        if pattern.degree(pattern_vertex) > host.degree(host_vertex):
            return False
        for neighbor in pattern.neighbors(pattern_vertex):
            if neighbor in mapping and not host.has_edge(
                host_vertex, mapping[neighbor]
            ):
                return False
        if self.induced:
            host_adj = host.neighbors(host_vertex)
            for mapped_pattern, mapped_host in mapping.items():
                if mapped_host in host_adj and not pattern.has_edge(
                    pattern_vertex, mapped_pattern
                ):
                    return False
        return True

    def _match(self) -> Iterator[Assignment]:
        trip("vf2.search")
        budget = current_budget()
        order = self._order
        if not order:
            yield {}
            return
        mapping: Assignment = {}
        used: set[VertexId] = set()
        # Search-effort counters are accumulated locally (the loop is the
        # hottest code in the library) and flushed to the registry once
        # per search, including early generator close.
        states_explored = 0
        backtracks = 0
        # Iterative backtracking over candidate generators; avoids Python
        # recursion limits on large patterns.
        stack: list[Iterator[VertexId]] = [
            self._candidates(order[0], mapping, used)
        ]
        try:
            while stack:
                depth = len(stack) - 1
                pattern_vertex = order[depth]
                advanced = False
                for host_vertex in stack[-1]:
                    states_explored += 1
                    if (
                        budget is not None
                        and states_explored % CHECK_STRIDE == 0
                    ):
                        budget.spend(CHECK_STRIDE, site="vf2.search")
                    if not self._feasible(pattern_vertex, host_vertex, mapping):
                        continue
                    mapping[pattern_vertex] = host_vertex
                    used.add(host_vertex)
                    if depth + 1 == len(order):
                        yield dict(mapping)
                        used.discard(host_vertex)
                        del mapping[pattern_vertex]
                        continue
                    stack.append(
                        self._candidates(order[depth + 1], mapping, used)
                    )
                    advanced = True
                    break
                if not advanced:
                    backtracks += 1
                    stack.pop()
                    if stack:
                        prior = order[len(stack) - 1]
                        if prior in mapping:
                            used.discard(mapping[prior])
                            del mapping[prior]
        finally:
            registry = get_registry()
            registry.counter("vf2.searches").add(1)
            registry.counter("vf2.states_explored").add(states_explored)
            registry.counter("vf2.backtracks").add(backtracks)
