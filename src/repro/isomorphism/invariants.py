"""Shared cheap-invariant prefilters for subgraph containment.

Every containment path in the repository ultimately asks the same
necessary-condition questions before paying for a VF2 search: does the
host have enough vertices/edges, does its vertex-label multiset dominate
the pattern's, does its edge-label multiset dominate the pattern's?
Historically :class:`~repro.isomorphism.vf2.VF2Matcher` and the FCT/IFE
index prefilters each reimplemented these checks; this module is the one
shared implementation, also consumed by the filter-then-verify coverage
engine (:mod:`repro.covindex`).

All helpers express *necessary* conditions for a monomorphism (and a
fortiori for an induced embedding): a ``False`` answer proves
non-containment, a ``True`` answer proves nothing.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from typing import Any, TypeVar

from ..graph.labeled_graph import LabeledGraph

K = TypeVar("K")


def multiset_dominates(
    required: Mapping[K, int], available: Mapping[K, int]
) -> bool:
    """True iff ``available[k] >= required[k]`` for every required key.

    The workhorse of every label-multiset prefilter: a pattern needing
    ``required`` occurrences of each label can only embed into a host
    offering at least as many.
    """
    for key, needed in required.items():
        if available.get(key, 0) < needed:
            return False
    return True


def invariant_prefilter(pattern: LabeledGraph, host: LabeledGraph) -> bool:
    """Cheap necessary conditions for ``pattern ⊆ host`` (monomorphism).

    Checks, in increasing cost order: vertex count, edge count, vertex
    label multiset dominance, edge label multiset dominance.  This is
    the prefilter :class:`~repro.isomorphism.vf2.VF2Matcher` runs before
    every search; index layers reuse it to stay consistent with the
    matcher's notion of "obviously impossible".
    """
    if pattern.num_vertices > host.num_vertices:
        return False
    if pattern.num_edges > host.num_edges:
        return False
    if not multiset_dominates(
        pattern.vertex_label_multiset(), host.vertex_label_multiset()
    ):
        return False
    return multiset_dominates(
        pattern.edge_label_multiset(), host.edge_label_multiset()
    )


def prune_by_counts(
    candidates: set[int],
    requirements: Mapping[Any, int],
    row_of: Callable[[Any], Mapping[int, int]],
) -> set[int]:
    """Drop candidates whose per-key counts fall below the requirements.

    *row_of* maps a requirement key to a ``{candidate_id: count}`` row
    (e.g. a :class:`~repro.index.sparse.SparseCountMatrix` row).  Used by
    the FCT- and IFE-index containment prefilters, which both reduce to
    exactly this count-dominance sweep.
    """
    for key, needed in requirements.items():
        if not candidates:
            break
        row = row_of(key)
        candidates = {
            candidate
            for candidate in candidates
            if row.get(candidate, 0) >= needed
        }
    return candidates


__all__ = ["invariant_prefilter", "multiset_dominates", "prune_by_counts"]
