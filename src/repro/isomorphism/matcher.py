"""Convenience wrappers around :class:`~repro.isomorphism.vf2.VF2Matcher`.

These helpers express the idioms used throughout the paper:

* ``contains(host, pattern)`` — does a data graph / query contain a
  subgraph isomorphic to a pattern?  (coverage, MP computation)
* ``count_embeddings`` — number of embeddings, used to populate the
  TG/TP/EG/EP matrices of the FCT- and IFE-indices (Section 5.1).
* ``covered_graphs`` — the set ``G_p ⊆ D`` of data graphs containing a
  pattern, the building block of subgraph coverage ``scov``.
"""

from __future__ import annotations

from collections.abc import Iterable

from ..graph.database import GraphDatabase
from ..graph.labeled_graph import LabeledGraph
from .vf2 import Assignment, Domains, VF2Matcher


def contains(
    host: LabeledGraph,
    pattern: LabeledGraph,
    induced: bool = False,
    domains: Domains | None = None,
) -> bool:
    """True iff *host* has a subgraph isomorphic to *pattern*.

    *domains* optionally seeds the matcher with precomputed candidate
    domains (see :class:`VF2Matcher`); the verdict is unchanged, only
    the search tree shrinks.
    """
    return VF2Matcher(
        pattern, host, induced=induced, domains=domains
    ).has_match()


def find_embedding(
    host: LabeledGraph, pattern: LabeledGraph, induced: bool = False
) -> Assignment | None:
    """Return one embedding (pattern vertex → host vertex) or None."""
    for assignment in VF2Matcher(pattern, host, induced=induced).matches():
        return assignment
    return None


def find_embeddings(
    host: LabeledGraph,
    pattern: LabeledGraph,
    induced: bool = False,
    limit: int | None = None,
) -> list[Assignment]:
    """Return up to *limit* embeddings of *pattern* in *host*."""
    result: list[Assignment] = []
    for assignment in VF2Matcher(pattern, host, induced=induced).matches():
        result.append(assignment)
        if limit is not None and len(result) >= limit:
            break
    return result


def count_embeddings(
    host: LabeledGraph,
    pattern: LabeledGraph,
    induced: bool = False,
    limit: int | None = None,
) -> int:
    """Number of embeddings of *pattern* in *host* (capped at *limit*)."""
    return VF2Matcher(pattern, host, induced=induced).count_matches(limit=limit)


def covered_graphs(
    database: GraphDatabase,
    pattern: LabeledGraph,
    candidate_ids: Iterable[int] | None = None,
) -> set[int]:
    """IDs of data graphs containing *pattern* (the paper's ``G_p``).

    *candidate_ids* restricts the scan (used with index prefilters and
    lazy sampling); default scans the whole database.
    """
    ids = database.ids() if candidate_ids is None else candidate_ids
    return {
        graph_id for graph_id in ids if contains(database[graph_id], pattern)
    }
