"""Run every experiment and emit a markdown report.

``python -m repro.bench.run_all [--scale small] [--out report.md]``
drives all figure and ablation experiments in sequence and writes the
tables as fenced markdown blocks — the machinery behind EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from ..cli import FIGURES, SCALES
from .harness import ExperimentTable


def run_all(scale_name: str = "small") -> tuple[str, float]:
    """Run every experiment; returns (markdown report, total seconds)."""
    scale = SCALES[scale_name]
    sections: list[str] = [
        "# Experiment report",
        "",
        f"Scale: `{scale_name}` — base |D| = {scale.base_graphs}, "
        f"γ = {scale.gamma}, pattern sizes {scale.eta_min}–{scale.eta_max}, "
        f"{scale.queries} queries per workload.",
        "",
    ]
    total_start = time.perf_counter()
    for name, (title, runner) in FIGURES.items():
        start = time.perf_counter()
        result = runner(scale)
        elapsed = time.perf_counter() - start
        tables = result if isinstance(result, tuple) else (result,)
        sections.append(f"## {name} — {title}")
        sections.append("")
        for table in tables:
            if isinstance(table, ExperimentTable):
                sections.append("```text")
                sections.append(table.render())
                sections.append("```")
                sections.append("")
        sections.append(f"_Completed in {elapsed:.1f}s._")
        sections.append("")
    total = time.perf_counter() - total_start
    sections.append(f"_Total: {total:.1f}s._")
    return "\n".join(sections), total


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="run every experiment and write a markdown report"
    )
    parser.add_argument("--scale", choices=sorted(SCALES), default="small")
    parser.add_argument("--out", default=None, help="output file (default stdout)")
    args = parser.parse_args(argv)
    report, total = run_all(args.scale)
    if args.out:
        Path(args.out).write_text(report)
        print(f"wrote report to {args.out} ({total:.1f}s)", file=sys.stderr)
    else:
        print(report)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
