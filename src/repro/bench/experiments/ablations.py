"""Ablation studies for the design choices DESIGN.md calls out.

* **A-ABL1** — scaffolding (Section 3.3): incremental FCT maintenance
  versus re-mining frequent subtrees from scratch on every batch.  This
  is the closure-property argument in isolation.
* **A-ABL2** — coverage-based pruning (Section 5.2): candidate
  generation with and without the Equation 2 edge gate.
* **A-ABL3** — GFD distance measures (Section 3.4): the paper's TR
  states the choice barely matters; we measure major/minor agreement
  across measures on a batch grid.
"""

from __future__ import annotations

import time

import numpy as np

from ...catapult.candidate import CandidateGenerator
from ...graphlets import DISTANCE_MEASURES, GraphletDistribution
from ...midas import Midas
from ...midas.pruning import PruningContext
from ...trees import FCTSet, TreeMiner
from ..common import (
    DEFAULT_SCALE,
    ExperimentScale,
    batch_grid,
    dataset,
    default_config,
)
from ..harness import ExperimentTable


def run_fct_vs_fs(scale: ExperimentScale = DEFAULT_SCALE) -> ExperimentTable:
    """A-ABL1: incremental FCT maintenance vs FS re-mining per batch."""
    base = dataset("aids", scale.base_graphs, scale.seed)
    graphs = dict(base.items())
    table = ExperimentTable(
        title="Ablation 1 — FCT incremental vs FS re-mine per batch [s]",
        columns=["batch", "fct_incremental", "fs_remine", "speedup"],
    )
    for batch_name, update in batch_grid(base, scale, "aids"):
        fct_set = FCTSet(graphs, sup_min=0.5)
        updated = base.updated(update)
        new_graphs = dict(updated.items())
        added = {g: new_graphs[g] for g in new_graphs if g not in graphs}
        removed = [g for g in graphs if g not in new_graphs]

        start = time.perf_counter()
        fct_set.apply(added=added, removed=removed)
        incremental = time.perf_counter() - start

        start = time.perf_counter()
        TreeMiner(new_graphs, 0.5).mine_frequent()
        remine = time.perf_counter() - start

        table.add_row(
            batch_name,
            incremental,
            remine,
            remine / max(incremental, 1e-9),
        )
    table.add_note(
        "shape: incremental maintenance beats re-mining, and the gap "
        "grows with |D| (the closure-property argument of Section 3.3)"
    )
    return table


def run_pruning(scale: ExperimentScale = DEFAULT_SCALE) -> ExperimentTable:
    """A-ABL2: candidate generation with/without the Equation 2 gate."""
    config = default_config(scale)
    base = dataset("aids", scale.base_graphs, scale.seed)
    table = ExperimentTable(
        title=(
            "Ablation 2 — Section 5.2 pruning: Eq.2 gate and the "
            "Definition 5.5 promising filter"
        ),
        columns=[
            "batch",
            "gated",
            "ungated",
            "promising",
            "gated_s",
            "ungated_s",
        ],
    )
    for batch_name, update in batch_grid(base, scale, "aids"):
        midas = Midas.bootstrap(base, config)
        midas.apply_update(update)
        graphs = dict(midas.database.items())
        pruning = PruningContext(
            midas.oracle,
            midas.pattern_graphs(),
            config.kappa,
            index_pair=midas.index_pair,
        )
        generator = CandidateGenerator(graphs, config.budget, seed=config.seed)
        summaries = midas.csgs.summaries()

        start = time.perf_counter()
        gated = generator.generate(summaries, edge_gate=pruning.edge_gate)
        gated_seconds = time.perf_counter() - start

        start = time.perf_counter()
        ungated = generator.generate(summaries)
        ungated_seconds = time.perf_counter() - start

        promising = [
            c for c in gated if pruning.is_promising(c.graph)
        ]
        table.add_row(
            batch_name,
            len(gated),
            len(ungated),
            len(promising),
            gated_seconds,
            ungated_seconds,
        )
    table.add_note(
        "shape: the gate prunes edges only where P already covers well; "
        "the promising filter then drops candidates that cannot satisfy "
        "sw1, shrinking the swap stage's input"
    )
    return table


def run_walks_vs_fsm(scale: ExperimentScale = DEFAULT_SCALE) -> ExperimentTable:
    """A-ABL4: walk-based FCP generation vs frequent subgraph mining.

    CATAPULT's core design bet (Section 2.3): random walks on CSGs
    propose candidates far cheaper than mining frequent subgraphs, at
    comparable candidate quality.  Measured head-to-head: generation
    time and the best set coverage achievable with each candidate pool.
    """
    from ...catapult.fsm import fsm_candidates
    from ...patterns import CoverageOracle

    config = default_config(scale)
    base = dataset("aids", scale.base_graphs, scale.seed)
    midas = Midas.bootstrap(base, config)
    graphs = dict(midas.database.items())
    oracle = CoverageOracle(
        {gid: graphs[gid] for gid in midas.sampler.sample_ids}
    )
    table = ExperimentTable(
        title="Ablation 4 — walk-based FCPs vs frequent-subgraph mining",
        columns=["source", "candidates", "gen_seconds", "best_set_scov"],
    )
    size_range = (config.budget.eta_min, min(config.budget.eta_max, 5))

    start = time.perf_counter()
    generator = CandidateGenerator(graphs, config.budget, seed=config.seed)
    walk_candidates = [
        c.graph for c in generator.generate(midas.csgs.summaries())
    ]
    walk_seconds = time.perf_counter() - start

    start = time.perf_counter()
    mined_candidates = fsm_candidates(
        graphs, config.sup_min / 2, size_range, max_candidates=64
    )
    fsm_seconds = time.perf_counter() - start

    def greedy_set_scov(pool, k):
        chosen: list = []
        remaining = list(pool)
        while remaining and len(chosen) < k:
            best = max(
                remaining,
                key=lambda c: oracle.benefit_score(c, chosen),
            )
            if oracle.benefit_score(best, chosen) <= 0 and chosen:
                break
            chosen.append(best)
            remaining.remove(best)
        return oracle.set_scov(chosen)

    gamma = config.budget.gamma
    table.add_row(
        "random-walk FCPs",
        len(walk_candidates),
        walk_seconds,
        greedy_set_scov(walk_candidates, gamma),
    )
    table.add_row(
        "frequent subgraphs",
        len(mined_candidates),
        fsm_seconds,
        greedy_set_scov(mined_candidates, gamma),
    )
    table.add_note(
        "shape: walks generate candidates much faster than FSM at "
        "comparable achievable coverage — CATAPULT's design bet"
    )
    return table


def run_distance_measures(
    scale: ExperimentScale = DEFAULT_SCALE,
) -> ExperimentTable:
    """A-ABL3: modification classification across GFD distances."""
    base = dataset("aids", scale.base_graphs, scale.seed)
    graphs = dict(base.items())
    before = GraphletDistribution(graphs)
    table = ExperimentTable(
        title="Ablation 3 — GFD distance per measure (normalised to max)",
        columns=["batch"] + sorted(DISTANCE_MEASURES),
    )
    raw_rows: list[tuple[str, dict[str, float]]] = []
    for batch_name, update in batch_grid(base, scale, "aids"):
        updated = base.updated(update)
        after = GraphletDistribution(dict(updated.items()))
        distances = {
            measure: fn(before.frequencies(), after.frequencies())
            for measure, fn in DISTANCE_MEASURES.items()
        }
        raw_rows.append((batch_name, distances))
    # Normalise each measure by its max across batches so the *ordering*
    # of batch severities can be compared across measures.
    maxima = {
        measure: max(row[1][measure] for row in raw_rows) or 1.0
        for measure in DISTANCE_MEASURES
    }
    for batch_name, distances in raw_rows:
        table.add_row(
            batch_name,
            *[
                distances[m] / maxima[m]
                for m in sorted(DISTANCE_MEASURES)
            ],
        )
    # Agreement statistic: Spearman rank correlation of batch severities.
    from scipy.stats import spearmanr

    measures = sorted(DISTANCE_MEASURES)
    reference = [row[1][measures[0]] for row in raw_rows]
    agreements = []
    for measure in measures[1:]:
        severities = [row[1][measure] for row in raw_rows]
        rho = spearmanr(reference, severities).statistic
        agreements.append(0.0 if np.isnan(rho) else float(rho))
    table.add_note(
        f"Spearman rank agreement with {measures[0]}: "
        + ", ".join(f"{a:.2f}" for a in agreements)
        + " — paper TR: distance choice has no significant impact"
    )
    return table
