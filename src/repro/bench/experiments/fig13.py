"""E-FIG13 — MIDAS vs NoMaintain (paper Figure 13, Exp 3a).

On AIDS25K across batch modifications, the paper reports that MIDAS's
maintained pattern set beats the never-maintained one by 61% MP on
average, with higher diversity and subgraph coverage.

Reproduced on an AIDS-like base over the standard batch grid; both
approaches start from the *same* bootstrap pattern set, so every
difference is attributable to maintenance.
"""

from __future__ import annotations

from ...midas import Midas, NoMaintainBaseline
from ...patterns import pattern_set_quality
from ...workload import balanced_query_set, evaluate_patterns
from ..common import (
    DEFAULT_SCALE,
    ExperimentScale,
    batch_grid,
    dataset,
    default_config,
)
from ..harness import ExperimentTable


def run(scale: ExperimentScale = DEFAULT_SCALE) -> ExperimentTable:
    config = default_config(scale)
    base = dataset("aids", scale.base_graphs, scale.seed)
    table = ExperimentTable(
        title="Fig 13 — MIDAS vs NoMaintain (AIDS-like): MP %, scov, div",
        columns=[
            "batch",
            "approach",
            "mp_percent",
            "scov",
            "div",
            "avg_steps",
        ],
    )
    for batch_name, update in batch_grid(base, scale, "aids"):
        midas = Midas.bootstrap(base, config)
        nomaintain = NoMaintainBaseline(
            config, base.copy(), midas.patterns.copy()
        )
        report = midas.apply_update(update)
        nomaintain.apply_update(update)
        queries = balanced_query_set(
            midas.database,
            report.inserted_ids,
            count=scale.queries,
            size_range=scale.query_sizes,
            seed=scale.seed + 31,
        )
        for approach, patterns in (
            ("midas", midas.pattern_graphs()),
            ("nomaintain", nomaintain.pattern_graphs()),
        ):
            workload = evaluate_patterns(approach, patterns, queries)
            quality = pattern_set_quality(_as_patterns(patterns), midas.oracle)
            table.add_row(
                batch_name,
                approach,
                workload.missed_percentage,
                quality["scov"],
                quality["div"],
                workload.average_steps,
            )
    table.add_note(
        "paper shape: MIDAS outperforms NoMaintain on MP (61% avg), with "
        "greater diversity and scov"
    )
    return table


def _as_patterns(graphs):
    from ...patterns import PatternSet

    pattern_set = PatternSet()
    for graph in graphs:
        try:
            pattern_set.add(graph, "eval")
        except ValueError:
            continue  # isomorphic duplicate in a stale set copy
    return pattern_set
