"""One experiment driver per paper figure (plus ablations)."""

from . import (
    ablations,
    covix,
    fig09,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
    fig16,
    perf,
    store,
)

__all__ = [
    "ablations",
    "covix",
    "fig09",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "perf",
    "store",
]
