"""E-FIG12 — cost of FCT mining and the indices (paper Figure 12, Exp 2).

The paper measures, across PubChem sizes up to 1M graphs: FCT mining
time, FCT-/IFE-index construction time and memory, index and FCT
maintenance time after a batch, and the ratio |FCT| / |D| (which shrinks
as |D| grows).  Reproduced across a scaled size series; the shape to
check: every cost grows with |D|, the FCT-Index costs more than the
IFE-Index, memory stays small, and |FCT|/|D| falls.

Timings come from :mod:`repro.obs` spans, so a CLI run with
``--metrics-out`` exports the same numbers the table shows.  A final
full maintenance round (MIDAS bootstrap + family batch, ``epsilon=0``
so the batch classifies as major) exercises the complete
``midas.apply_update`` span tree including candidate generation and
swapping.
"""

from __future__ import annotations

from ...datasets import family_injection, random_insertions
from ...index import FCTIndex, IFEIndex, IndexPair
from ...midas import Midas
from ...obs import span
from ...trees import FCTSet
from ..common import (
    ExperimentScale,
    DEFAULT_SCALE,
    PROFILES,
    dataset,
    default_config,
)
from ..harness import ExperimentTable

SIZE_SERIES = (60, 120, 240)


def run(
    scale: ExperimentScale = DEFAULT_SCALE,
    sizes: tuple[int, ...] = SIZE_SERIES,
) -> ExperimentTable:
    table = ExperimentTable(
        title=(
            "Fig 12 — FCT & index costs vs |D|: build [s], memory [KB], "
            "maintain [s], |FCT|/|D|"
        ),
        columns=[
            "|D|",
            "fct_mine",
            "fct_index_build",
            "ife_index_build",
            "memory_kb",
            "fct_maintain",
            "index_maintain",
            "fct_ratio",
        ],
    )
    for size in sizes:
        base = dataset("pubchem", size, scale.seed)
        graphs = dict(base.items())

        with span("fct_mine") as mine_span:
            fct_set = FCTSet(graphs, sup_min=0.5)
        fct_mine = mine_span.last_seconds

        features = fct_set.fcts() + [
            e for e in fct_set.frequent_edges() if not e.closed
        ]
        with span("fct_index_build") as fct_span:
            fct_index = FCTIndex.build(features, graphs)
        fct_build = fct_span.last_seconds

        with span("ife_index_build") as ife_span:
            ife_index = IFEIndex.build(
                fct_set.infrequent_edge_labels(), graphs
            )
        ife_build = ife_span.last_seconds

        pair = IndexPair(fct_index, ife_index)
        memory_kb = pair.memory_bytes() / 1024.0

        update = random_insertions(base, 10.0, None, seed=scale.seed + 3)
        updated = base.updated(update)
        new_graphs = dict(updated.items())
        added_ids = [gid for gid in new_graphs if gid not in graphs]

        with span("fct_maintain") as maintain_span:
            fct_set.add_graphs({gid: new_graphs[gid] for gid in added_ids})
        fct_maintain = maintain_span.last_seconds

        with span("index_maintain") as index_span:
            pair.apply_update(
                fct_set, new_graphs, added_ids=added_ids, removed_ids=[]
            )
        index_maintain = index_span.last_seconds

        ratio = len(fct_set.fcts()) / len(updated)
        table.add_row(
            size,
            fct_mine,
            fct_build,
            ife_build,
            memory_kb,
            fct_maintain,
            index_maintain,
            ratio,
        )

    # One full maintenance round so the exported span tree also covers
    # the pattern-side phases (candidates, swap).  epsilon=0 forces the
    # detector to classify the batch as a major modification.
    with span("maintenance_round"):
        base = dataset("pubchem", sizes[0], scale.seed)
        config = default_config(scale, epsilon=0.0)
        midas = Midas.bootstrap(base, config)
        update = family_injection(
            scale.family_batch,
            "boronic_ester",
            PROFILES["pubchem"],
            scale.seed + 4,
        )
        report = midas.apply_update(update)
    table.add_note(
        "maintenance round (family batch, forced major): "
        f"PMT={report.pattern_maintenance_seconds:.2f}s, "
        f"PGT={report.pattern_generation_seconds:.2f}s, "
        f"swaps={report.num_swaps}"
    )
    table.add_note(
        "paper shape: costs grow with |D|; FCT-Index > IFE-Index build "
        "cost; memory small; |FCT|/|D| shrinks as |D| grows"
    )
    return table
