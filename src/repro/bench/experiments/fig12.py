"""E-FIG12 — cost of FCT mining and the indices (paper Figure 12, Exp 2).

The paper measures, across PubChem sizes up to 1M graphs: FCT mining
time, FCT-/IFE-index construction time and memory, index and FCT
maintenance time after a batch, and the ratio |FCT| / |D| (which shrinks
as |D| grows).  Reproduced across a scaled size series; the shape to
check: every cost grows with |D|, the FCT-Index costs more than the
IFE-Index, memory stays small, and |FCT|/|D| falls.
"""

from __future__ import annotations

import time

from ...datasets import random_insertions
from ...index import FCTIndex, IFEIndex, IndexPair
from ...trees import FCTSet
from ..common import ExperimentScale, DEFAULT_SCALE, dataset
from ..harness import ExperimentTable

SIZE_SERIES = (60, 120, 240)


def run(
    scale: ExperimentScale = DEFAULT_SCALE,
    sizes: tuple[int, ...] = SIZE_SERIES,
) -> ExperimentTable:
    table = ExperimentTable(
        title=(
            "Fig 12 — FCT & index costs vs |D|: build [s], memory [KB], "
            "maintain [s], |FCT|/|D|"
        ),
        columns=[
            "|D|",
            "fct_mine",
            "fct_index_build",
            "ife_index_build",
            "memory_kb",
            "fct_maintain",
            "index_maintain",
            "fct_ratio",
        ],
    )
    for size in sizes:
        base = dataset("pubchem", size, scale.seed)
        graphs = dict(base.items())

        start = time.perf_counter()
        fct_set = FCTSet(graphs, sup_min=0.5)
        fct_mine = time.perf_counter() - start

        features = fct_set.fcts() + [
            e for e in fct_set.frequent_edges() if not e.closed
        ]
        start = time.perf_counter()
        fct_index = FCTIndex.build(features, graphs)
        fct_build = time.perf_counter() - start

        start = time.perf_counter()
        ife_index = IFEIndex.build(fct_set.infrequent_edge_labels(), graphs)
        ife_build = time.perf_counter() - start

        pair = IndexPair(fct_index, ife_index)
        memory_kb = pair.memory_bytes() / 1024.0

        update = random_insertions(base, 10.0, None, seed=scale.seed + 3)
        updated = base.updated(update)
        new_graphs = dict(updated.items())
        added_ids = [gid for gid in new_graphs if gid not in graphs]

        start = time.perf_counter()
        fct_set.add_graphs({gid: new_graphs[gid] for gid in added_ids})
        fct_maintain = time.perf_counter() - start

        start = time.perf_counter()
        pair.apply_update(
            fct_set, new_graphs, added_ids=added_ids, removed_ids=[]
        )
        index_maintain = time.perf_counter() - start

        ratio = len(fct_set.fcts()) / len(updated)
        table.add_row(
            size,
            fct_mine,
            fct_build,
            ife_build,
            memory_kb,
            fct_maintain,
            index_maintain,
            ratio,
        )
    table.add_note(
        "paper shape: costs grow with |D|; FCT-Index > IFE-Index build "
        "cost; memory small; |FCT|/|D| shrinks as |D| grows"
    )
    return table
