"""E-FIG15 — the Figure 14 comparison on PubChem-like data (Exp 3c).

Identical protocol to :mod:`repro.bench.experiments.fig14`, run on the
PubChem-like profile (paper Figure 15, Pubchem15K).
"""

from __future__ import annotations

from ..common import DEFAULT_SCALE, ExperimentScale
from ..harness import ExperimentTable
from .fig14 import run as _run_fig14


def run(scale: ExperimentScale = DEFAULT_SCALE) -> ExperimentTable:
    return _run_fig14(scale, profile_name="pubchem")
