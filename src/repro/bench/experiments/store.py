"""Store — out-of-core SQLite backend vs the in-memory store at scale.

Not a paper figure: this driver validates the pluggable storage layer
(:mod:`repro.store`) the way the covix figure validates the coverage
engine.  It answers two questions the unit suite cannot:

1. **Identity at scale.**  The same synthetic graph stream — bootstrap
   ingest plus :data:`NUM_ROUNDS` ±:data:`ROUND_PERCENT`% maintenance
   rounds — is driven through both backends and a per-round digest
   (graph count, next id, vertex/edge totals, label alphabet) must be
   byte-identical.  Any divergence raises (``repro bench`` reports
   FAILED and exits non-zero).
2. **Bounded memory.**  The SQLite backend exists so a repository larger
   than RAM stays maintainable.  Its traced peak must stay under
   ``REPRO_STORE_MEM_CEILING_MB`` (default :data:`DEFAULT_CEILING_MB`
   MiB) while the in-memory column reports whatever it actually costs —
   the gap between the two columns *is* the figure.

The workload is store-level, not a full MIDAS trajectory: at
``--scale large`` the stream is ``400 × 250 = 100 000`` graphs
(the paper's 10⁵ repository tier), far beyond what the scaled-down
selection pipeline is meant to chew through, and the storage layer is
what is under test here.  Batches go through the public
:meth:`~repro.store.base.GraphStore.apply_batch` path so journaling,
shard-posting maintenance and cache eviction are all exercised.
Results land in ``BENCH_store.json`` (override with
``REPRO_STORE_BENCH_OUT``) for the scheduled CI artifact.
"""

from __future__ import annotations

import json
import os
import random
import tempfile
import time
import tracemalloc
from pathlib import Path

from ...covindex.index import CoverageIndex
from ...datasets import MoleculeGenerator, aids_profile
from ...graph.database import BatchUpdate, GraphDatabase
from ...store.sqlite import SQLiteStore
from ..common import DEFAULT_SCALE, ExperimentScale
from ..harness import ExperimentTable

#: Graphs per ``scale.base_graphs`` unit: ``small`` → 20 000 graphs,
#: ``large`` → 100 000 — the 10⁵ acceptance tier.
GRAPHS_PER_UNIT = 250

#: Maintenance rounds applied after the bootstrap ingest.
NUM_ROUNDS = 5

#: Each round deletes and inserts this percentage of the repository.
ROUND_PERCENT = 1.0

#: Bootstrap ingest batch size (one ``apply_batch`` call per chunk, so
#: the out-of-core backend never has to hold the full stream).
CHUNK = 2000

#: Default SQLite peak-memory ceiling in MiB
#: (``REPRO_STORE_MEM_CEILING_MB`` overrides).
DEFAULT_CEILING_MB = 512

#: Full coverage-index cross-checks are quadratic-ish in repository
#: size; only run them below this graph count (the conformance suite
#: covers the small sizes exhaustively anyway).
MAX_COVINDEX_CHECK_GRAPHS = 25_000


def _digest(store) -> tuple:
    """Cheap whole-store fingerprint comparable across backends."""
    return (
        len(store),
        store.next_graph_id(),
        store.total_vertices(),
        store.total_edges(),
        tuple(sorted(store.vertex_label_alphabet())),
    )


def _stream(seed: int):
    """The deterministic synthetic graph stream, regenerated per backend."""
    return MoleculeGenerator(aids_profile(), seed)


def _round_batch(store, generator, rng: random.Random) -> BatchUpdate:
    """A ±ROUND_PERCENT% round against the store's *current* contents."""
    ids = store.ids()
    count = max(1, int(len(ids) * ROUND_PERCENT / 100.0))
    deletions = sorted(rng.sample(ids, min(count, len(ids))))
    insertions = [generator.generate() for _ in range(count)]
    return BatchUpdate.of(insertions=insertions, deletions=deletions)


def _run_backend(
    backend: str, scale: ExperimentScale, workdir: Path
) -> dict:
    count = scale.base_graphs * GRAPHS_PER_UNIT
    if backend == "memory":
        store = GraphDatabase()
    else:
        store = SQLiteStore(workdir / "store.db", fsync="never")
    generator = _stream(scale.seed)
    rng = random.Random(scale.seed + 1)
    tracemalloc.start()
    try:
        start = time.perf_counter()
        pending: list = []
        for _ in range(count):
            pending.append(generator.generate())
            if len(pending) >= CHUNK:
                store.apply_batch(BatchUpdate.of(insertions=pending))
                pending = []
        if pending:
            store.apply_batch(BatchUpdate.of(insertions=pending))
        bootstrap_s = time.perf_counter() - start

        digests = [_digest(store)]
        start = time.perf_counter()
        for _ in range(NUM_ROUNDS):
            store.apply_batch(_round_batch(store, generator, rng))
            digests.append(_digest(store))
        rounds_s = time.perf_counter() - start

        covindex_ok = None
        if backend == "sqlite" and count <= MAX_COVINDEX_CHECK_GRAPHS:
            rebuilt = CoverageIndex.build(dict(store.items()))
            covindex_ok = store.coverage_index() == rebuilt
        peak = tracemalloc.get_traced_memory()[1]
    finally:
        tracemalloc.stop()
        store.close()
    return {
        "backend": backend,
        "graphs": count,
        "bootstrap_s": bootstrap_s,
        "rounds_s": rounds_s,
        "peak_mb": peak / (1024 * 1024),
        "digests": digests,
        "covindex_ok": covindex_ok,
    }


def run(scale: ExperimentScale = DEFAULT_SCALE) -> ExperimentTable:
    ceiling_mb = float(
        os.environ.get("REPRO_STORE_MEM_CEILING_MB", DEFAULT_CEILING_MB)
    )
    results = []
    with tempfile.TemporaryDirectory(prefix="repro-bench-store-") as tmp:
        for backend in ("memory", "sqlite"):
            results.append(_run_backend(backend, scale, Path(tmp)))
    memory, sqlite = results

    identical = memory["digests"] == sqlite["digests"]
    within_ceiling = sqlite["peak_mb"] <= ceiling_mb
    covindex_checked = sqlite["covindex_ok"] is not None

    table = ExperimentTable(
        title=(
            f"Store — in-memory vs SQLite out-of-core backend, "
            f"{memory['graphs']} graphs, bootstrap + {NUM_ROUNDS} "
            f"±{ROUND_PERCENT:.0f}% rounds"
        ),
        columns=["measure", "memory", "sqlite", "ratio", "status"],
    )
    table.add_row(
        "bootstrap_s",
        round(memory["bootstrap_s"], 2),
        round(sqlite["bootstrap_s"], 2),
        (
            sqlite["bootstrap_s"] / memory["bootstrap_s"]
            if memory["bootstrap_s"]
            else float("inf")
        ),
        "informational",
    )
    table.add_row(
        "rounds_s",
        round(memory["rounds_s"], 2),
        round(sqlite["rounds_s"], 2),
        (
            sqlite["rounds_s"] / memory["rounds_s"]
            if memory["rounds_s"]
            else float("inf")
        ),
        "informational",
    )
    table.add_row(
        "peak_mb",
        round(memory["peak_mb"], 1),
        round(sqlite["peak_mb"], 1),
        (
            sqlite["peak_mb"] / memory["peak_mb"]
            if memory["peak_mb"]
            else float("inf")
        ),
        (
            f"<= {ceiling_mb:.0f} MiB ceiling"
            if within_ceiling
            else "OVER_CEILING"
        ),
    )
    table.add_row(
        "trajectory",
        len(memory["digests"]),
        len(sqlite["digests"]),
        1.0,
        "identical" if identical else "MISMATCH",
    )
    table.add_row(
        "covindex",
        int(covindex_checked),
        int(bool(sqlite["covindex_ok"])),
        1.0,
        (
            ("ok" if sqlite["covindex_ok"] else "MISMATCH")
            if covindex_checked
            else f"skipped > {MAX_COVINDEX_CHECK_GRAPHS} graphs"
        ),
    )
    table.add_note(
        "digest = (count, next id, vertices, edges, alphabet) per round; "
        "SQLite peak alone is gated by REPRO_STORE_MEM_CEILING_MB"
    )

    out = Path(os.environ.get("REPRO_STORE_BENCH_OUT", "BENCH_store.json"))
    payload = {
        "figure": "store",
        "graphs": memory["graphs"],
        "rounds": NUM_ROUNDS,
        "round_percent": ROUND_PERCENT,
        "ceiling_mb": ceiling_mb,
        "identical_trajectory": identical,
        "backends": [
            {key: value for key, value in result.items() if key != "digests"}
            for result in results
        ],
    }
    out.write_text(json.dumps(payload, indent=2) + "\n")
    table.add_note(f"written to {out}")

    if not identical:
        raise RuntimeError(
            "store figure failed: SQLite trajectory diverged from the "
            "in-memory backend (digest mismatch)"
        )
    if covindex_checked and not sqlite["covindex_ok"]:
        raise RuntimeError(
            "store figure failed: persisted SQLite postings do not "
            "reassemble to the from-scratch coverage index"
        )
    if not within_ceiling:
        raise RuntimeError(
            "store figure failed: SQLite backend peaked at "
            f"{sqlite['peak_mb']:.1f} MiB, over the {ceiling_mb:.0f} MiB "
            "ceiling (REPRO_STORE_MEM_CEILING_MB)"
        )
    return table


__all__ = [
    "CHUNK",
    "DEFAULT_CEILING_MB",
    "GRAPHS_PER_UNIT",
    "MAX_COVINDEX_CHECK_GRAPHS",
    "NUM_ROUNDS",
    "ROUND_PERCENT",
    "run",
]
