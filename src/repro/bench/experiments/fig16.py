"""E-FIG16 — scalability (paper Figure 16, Exp 4).

The paper grows PubChem to {200K, 450K, 950K} graphs, adds 50K to each,
and reports PMT and PGT versus dataset size, pattern quality ranges,
μ relative to the smallest dataset's pattern set, and the headline
speedups: cluster maintenance 642× and PMT 83× faster than CATAPULT
from scratch at 1M graphs.

Reproduced on a scaled series with a proportional batch; each row also
measures the from-scratch CATAPULT++ reference so the table prints the
cluster-maintenance and PMT speedups directly.
"""

from __future__ import annotations

from ...datasets import random_insertions
from ...midas import Midas, from_scratch
from ...patterns import pattern_set_quality
from ...workload import (
    balanced_query_set,
    compare_step_reduction,
    evaluate_patterns,
)
from ..common import DEFAULT_SCALE, ExperimentScale, dataset, default_config
from ..harness import ExperimentTable

SIZE_SERIES = (80, 160, 320)
BATCH_SIZE = 40


def run(
    scale: ExperimentScale = DEFAULT_SCALE,
    sizes: tuple[int, ...] = SIZE_SERIES,
    batch_size: int = BATCH_SIZE,
) -> ExperimentTable:
    table = ExperimentTable(
        title=(
            "Fig 16 — scalability: PMT/PGT [s], speedups vs from-scratch, "
            "quality, μ vs smallest"
        ),
        columns=[
            "|D|",
            "pmt",
            "pgt",
            "cluster_speedup",
            "pmt_speedup",
            "scov",
            "div",
            "mu_vs_smallest",
        ],
    )
    smallest_result = None
    for size in sizes:
        config = default_config(scale)
        base = dataset("pubchem", size, scale.seed)
        update = random_insertions(
            base, 100.0 * batch_size / size, None, seed=scale.seed + 5
        )
        midas = Midas.bootstrap(base, config)
        report = midas.apply_update(update)
        _, scratch_watch, _ = from_scratch(
            base, update, config, plus_plus=True
        )
        scratch_cluster = scratch_watch.get("mining") + scratch_watch.get(
            "clustering"
        )
        own_cluster = max(report.cluster_maintenance_seconds, 1e-9)
        quality = pattern_set_quality(midas.patterns, midas.oracle)
        queries = balanced_query_set(
            midas.database,
            report.inserted_ids,
            count=scale.queries,
            size_range=scale.query_sizes,
            seed=scale.seed + 51,
        )
        own_result = evaluate_patterns(
            f"midas@{size}", midas.pattern_graphs(), queries
        )
        if smallest_result is None:
            smallest_result = (midas.pattern_graphs(), queries)
            mu = 0.0
        else:
            smallest_on_these = evaluate_patterns(
                "smallest", smallest_result[0], queries
            )
            # μ < 0 means the larger dataset's pattern set needs fewer
            # steps (paper reports negative μ for larger datasets).
            mu = compare_step_reduction(own_result, smallest_on_these)
        pmt = max(report.pattern_maintenance_seconds, 1e-9)
        table.add_row(
            size,
            report.pattern_maintenance_seconds,
            report.pattern_generation_seconds,
            scratch_cluster / own_cluster,
            scratch_watch.total() / pmt,
            quality["scov"],
            quality["div"],
            mu,
        )
    table.add_note(
        "paper shape: PMT/PGT grow with |D|; cluster maintenance and PMT "
        "speedups over from-scratch grow with |D| (642x / 83x at 1M); "
        "μ vs smallest is negative (larger DS yields better patterns)"
    )
    return table
