"""COVIX — coverage-engine equivalence, VF2 reduction, substrate speedup.

Not a paper figure: this driver validates the filter-then-verify
coverage engine (:mod:`repro.covindex`) the way the perf figure
validates the parallel and cache layers.

Three full MIDAS trajectories — bootstrap plus the paper's modification
grid applied *sequentially* — run from the same seed: engine off,
engine on over the plain-int reference substrate, and engine on over
the vectorized numpy substrate.  After every round the algorithmic
outcome is snapshotted: database IDs, the canonical keys of the
displayed pattern set, the set-level scov/lcov, the batch
classification and the executed swap count.  All traces must be
**identical** — the engine's posting-list filter and VF2 domain seeding
only skip work whose outcome is already decided, and the substrates
are observationally equivalent by construction, so any divergence is a
soundness bug and the driver raises (``repro bench`` reports FAILED and
exits non-zero; the scheduled CI job keys on this).

Two payoff gates:

* ``vf2.cover_calls`` — VF2 matcher invocations spent computing cover
  sets (verification loops plus the FCT prefilter's per-feature
  embedding counts), the work the engine exists to avoid.  The engine
  path must cut it by at least :data:`MIN_VF2_REDUCTION` ×.
* filter-phase wall clock — the ``covindex.filter_ns`` counter divided
  by rounds, per substrate, published as the trend gauges
  ``covindex.trend.filter_ns_per_round_int`` /
  ``covindex.trend.filter_ns_per_round_numpy`` /
  ``covindex.trend.filter_speedup``.  At gate scale
  (``base_graphs >= MIN_GATE_GRAPHS``, i.e. ``--scale large``) the
  numpy substrate must beat the int reference by at least
  :data:`MIN_FILTER_SPEEDUP` ×; below that the row is informational —
  tiny universes fit in a machine word either way and the comparison
  is noise (docs/PERFORMANCE.md).

A final probe measures what persistent workers ship across the process
boundary: the same containment fan-out runs once through the legacy
host-pickling kernel and once through ``contains_view_kernel`` against
a published :class:`~repro.parallel.shared.HostView`, comparing
``parallel.bytes_pickled`` deltas.  The view path must ship strictly
fewer bytes (and identical verdicts); the probe is skipped on
platforms without the ``fork`` start method.
"""

from __future__ import annotations

from ...cache.keys import graph_key
from ...covindex.bitset import available_substrates
from ...execution import ExecutionConfig
from ...graph.labeled_graph import LabeledGraph
from ...midas import Midas
from ...obs import get_registry
from ...parallel import (
    contains_kernel,
    contains_view_kernel,
    publish_view,
    retire_view,
)
from ...parallel.pool import KernelPool, _fork_context
from ...patterns import pattern_set_quality
from ..common import (
    DEFAULT_SCALE,
    ExperimentScale,
    batch_grid,
    dataset,
    default_config,
)
from ..harness import ExperimentTable

#: Minimum acceptable ratio of engine-off to engine-on
#: ``vf2.cover_calls`` over the whole trajectory.  The small-scale
#: workload measures well above this; the gate is the acceptance floor.
MIN_VF2_REDUCTION = 2.0

#: Minimum acceptable int/numpy filter-phase wall-clock-per-round ratio
#: at gate scale.  Below :data:`MIN_GATE_GRAPHS` the comparison is
#: reported but not enforced — sub-word universes make it noise.
MIN_FILTER_SPEEDUP = 2.0

#: Database size from which the filter-speedup gate arms (the ``large``
#: bench scale qualifies; ``small``/``medium`` stay informational).
MIN_GATE_GRAPHS = 400

#: Number of batch-grid rounds applied sequentially.  Each round's grid
#: is regenerated from the maintainer's *current* database so deletions
#: always reference live graph IDs.
NUM_ROUNDS = 4

#: Minimum acceptable further ``vf2.cover_calls`` reduction the fragment
#: network must deliver over the engine-only baseline on the
#: overlapping-pattern probe workload.
FRAG_MIN_VF2_REDUCTION = 1.5

#: The decoration labels of the overlapping-pattern probe.  They sort
#: after "N", so the canonical growth order exhausts the shared (C, N)
#: core before any decoration edge — all probe patterns then share one
#: fragment chain.
_PROBE_DECORATIONS = ("O", "P", "S", "T")


def _round_signature(midas: Midas) -> tuple:
    """Everything algorithmic about the maintainer's current state."""
    quality = pattern_set_quality(midas.patterns, midas.oracle)
    return (
        tuple(sorted(midas.database.ids())),
        tuple(sorted(graph_key(g) for g in midas.pattern_graphs())),
        quality["scov"],
        quality["lcov"],
    )


def _trajectory(
    scale: ExperimentScale,
    covindex: bool,
    substrate: str | None = None,
    fragments: bool = False,
) -> tuple[list, dict[str, int]]:
    """Bootstrap + sequential batch grid; returns (trace, counter deltas)."""
    config = default_config(
        scale,
        execution=ExecutionConfig(
            covindex=covindex, substrate=substrate, fragments=fragments
        ),
    )
    base = dataset("aids", scale.base_graphs, scale.seed)
    registry = get_registry()
    before = registry.counter_values()
    midas = Midas.bootstrap(base.copy(), config)
    trace: list = [("bootstrap", None, 0, _round_signature(midas))]
    for position in range(NUM_ROUNDS):
        batch_name, update = batch_grid(midas.database, scale, "aids")[
            position
        ]
        report = midas.apply_update(update)
        trace.append(
            (
                batch_name,
                report.is_major,
                report.num_swaps,
                _round_signature(midas),
                tuple(report.inserted_ids),
                tuple(report.deleted_ids),
            )
        )
    return trace, registry.counter_deltas(before)


def _probe_core() -> LabeledGraph:
    """The shared 6-edge alternating C/N path core of the probe family."""
    graph = LabeledGraph()
    for i, label in enumerate("CNCNCNC"):
        graph.add_vertex(i, label)
    for i in range(6):
        graph.add_edge(i, i + 1)
    return graph


def _probe_pattern(label: str, position: int) -> LabeledGraph:
    """Core + one decoration leaf: 16 non-isomorphic 7-edge patterns."""
    graph = _probe_core()
    graph.add_vertex(100, label)
    graph.add_edge(position, 100)
    return graph


def _probe_container() -> LabeledGraph:
    """A host containing every probe pattern (core fully decorated)."""
    graph = _probe_core()
    vertex = 100
    for position in range(7):
        for label in _PROBE_DECORATIONS:
            graph.add_vertex(vertex, label)
            graph.add_edge(position, vertex)
            vertex += 1
    return graph


def _probe_decoy() -> LabeledGraph:
    """A host passing every pattern's posting filter but containing none.

    A four-legged spider (center C, legs N–C–N) with one decoration
    leaf per label on a leg C and a leg N: its vertex/edge-label,
    degree, neighbor and wedge counts dominate every probe pattern's,
    but its longest alternating C/N path is leg-to-leg — six edges,
    N-ended — so it never embeds the C-ended core.  The posting filter
    keeps it for all 16 patterns; only verification (of the pattern, or
    once of the shared core fragment) rejects it.
    """
    graph = LabeledGraph()
    graph.add_vertex(0, "C")
    vertex = 1
    for leg in range(4):
        inner_n, mid_c, end_n = vertex, vertex + 1, vertex + 2
        vertex += 3
        graph.add_vertex(inner_n, "N")
        graph.add_vertex(mid_c, "C")
        graph.add_vertex(end_n, "N")
        graph.add_edge(0, inner_n)
        graph.add_edge(inner_n, mid_c)
        graph.add_edge(mid_c, end_n)
        label = _PROBE_DECORATIONS[leg]
        graph.add_vertex(vertex, label)
        graph.add_edge(mid_c, vertex)
        vertex += 1
        graph.add_vertex(vertex, label)
        graph.add_edge(inner_n, vertex)
        vertex += 1
    return graph


def _overlapping_probe(
    scale: ExperimentScale,
) -> tuple[bool, int, int, float]:
    """(covers_identical, off_calls, on_calls, reduction) for the
    overlapping-pattern workload.

    Sixteen 7-edge patterns sharing one canonical 6-edge core query a
    database dominated by filter-passing decoys, first on the initial
    view and again after an insertion batch (the delta path).  With the
    network off, every pattern pays a VF2 rejection per decoy; with it
    on, each decoy is rejected once at the shared core fragment and the
    mask prunes it from all sixteen patterns.
    """
    from ...covindex.fragments import use_fragments
    from ...covindex.engine import use_covindex
    from ...patterns.metrics import CoverageOracle

    patterns = [
        _probe_pattern(label, position)
        for label in _PROBE_DECORATIONS
        for position in range(4)
    ]
    num_containers = max(4, scale.base_graphs // 100)
    num_decoys = 6 * num_containers
    graphs: dict[int, LabeledGraph] = {}
    for graph_id in range(num_containers):
        graphs[graph_id] = _probe_container()
    for graph_id in range(num_containers, num_containers + num_decoys):
        graphs[graph_id] = _probe_decoy()
    next_id = num_containers + num_decoys
    batch = {next_id: _probe_container()}
    for graph_id in range(next_id + 1, next_id + 1 + num_decoys // 2):
        batch[graph_id] = _probe_decoy()

    registry = get_registry()
    calls: dict[bool, int] = {}
    covers: dict[bool, list] = {}
    for fragments in (False, True):
        with use_covindex(True), use_fragments(fragments):
            oracle = CoverageOracle(dict(graphs))
        before = registry.counter_values()
        trace = [oracle.cover(pattern) for pattern in patterns]
        oracle.apply_update(batch, [])
        trace.extend(oracle.cover(pattern) for pattern in patterns)
        calls[fragments] = registry.counter_deltas(before).get(
            "vf2.cover_calls", 0
        )
        covers[fragments] = trace
    identical = covers[False] == covers[True]
    reduction = (
        calls[False] / calls[True] if calls[True] else float("inf")
    )
    return identical, calls[False], calls[True], reduction


def _fanout_bytes_probe(
    scale: ExperimentScale,
) -> tuple[int, int, bool] | None:
    """(view_bytes, legacy_bytes, verdicts_identical) — or None w/o fork.

    The same containment fan-out over the same hosts, once shipping
    only ``(graph_id, domains)`` against a published view and once
    pickling every host graph, both through a real 2-worker pool.
    """
    if _fork_context() is None:
        return None
    count = max(16, min(scale.base_graphs, 64))
    graphs = dict(dataset("aids", count, scale.seed).items())
    ids = sorted(graphs)
    pattern = LabeledGraph.from_edges({0: "C", 1: "C"}, [(0, 1)])
    registry = get_registry()
    view = publish_view(graphs)
    try:
        with KernelPool(2, force=True) as pool:
            before = registry.counter_values()
            view_verdicts = pool.map(
                contains_view_kernel,
                [(graph_id, None) for graph_id in ids],
                payload=(view.view_id, view.generation, pattern),
            )
            view_bytes = registry.counter_deltas(before).get(
                "parallel.bytes_pickled", 0
            )
            before = registry.counter_values()
            legacy_verdicts = pool.map(
                contains_kernel,
                [graphs[graph_id] for graph_id in ids],
                payload=pattern,
            )
            legacy_bytes = registry.counter_deltas(before).get(
                "parallel.bytes_pickled", 0
            )
    finally:
        retire_view(view.view_id)
    return view_bytes, legacy_bytes, view_verdicts == legacy_verdicts


def run(scale: ExperimentScale = DEFAULT_SCALE) -> ExperimentTable:
    rounds = NUM_ROUNDS + 1  # bootstrap counts: it filters too
    numpy_available = "numpy" in available_substrates()

    off_trace, off_counters = _trajectory(scale, covindex=False)
    int_trace, int_counters = _trajectory(
        scale, covindex=True, substrate="int"
    )
    if numpy_available:
        numpy_trace, numpy_counters = _trajectory(
            scale, covindex=True, substrate="numpy"
        )
    else:
        numpy_trace, numpy_counters = int_trace, int_counters
    frag_trace, frag_counters = _trajectory(
        scale,
        covindex=True,
        substrate="numpy" if numpy_available else "int",
        fragments=True,
    )

    identical = off_trace == int_trace == numpy_trace == frag_trace
    on_counters = numpy_counters if numpy_available else int_counters
    off_calls = off_counters.get("vf2.cover_calls", 0)
    on_calls = on_counters.get("vf2.cover_calls", 0)
    reduction = off_calls / on_calls if on_calls else float("inf")
    pruned = on_counters.get("covindex.candidates_pruned", 0)
    kept = on_counters.get("covindex.candidates_kept", 0)
    filtered = pruned + kept

    registry = get_registry()
    int_per_round = int_counters.get("covindex.filter_ns", 0) / rounds
    registry.gauge("covindex.trend.filter_ns_per_round_int").set(
        int_per_round
    )
    speedup_gated = numpy_available and scale.base_graphs >= MIN_GATE_GRAPHS
    if numpy_available:
        numpy_per_round = (
            numpy_counters.get("covindex.filter_ns", 0) / rounds
        )
        speedup = (
            int_per_round / numpy_per_round
            if numpy_per_round
            else float("inf")
        )
        registry.gauge("covindex.trend.filter_ns_per_round_numpy").set(
            numpy_per_round
        )
        registry.gauge("covindex.trend.filter_speedup").set(speedup)
    else:
        numpy_per_round = 0.0
        speedup = float("nan")

    (
        frag_covers_identical,
        frag_off_calls,
        frag_on_calls,
        frag_reduction,
    ) = _overlapping_probe(scale)
    registry.gauge("covindex.trend.frag_cover_call_reduction").set(
        frag_reduction if frag_reduction != float("inf") else 0.0
    )

    probe = _fanout_bytes_probe(scale)

    table = ExperimentTable(
        title=(
            "Covix — coverage engine off/int/numpy: identical results, "
            f"{NUM_ROUNDS}-round AIDS-like trajectory"
        ),
        columns=["measure", "baseline", "engine_on", "ratio", "status"],
    )
    table.add_row(
        "trace",
        len(off_trace),
        len(numpy_trace),
        1.0,
        "identical" if identical else "MISMATCH",
    )
    table.add_row(
        "vf2.cover_calls",
        off_calls,
        on_calls,
        reduction,
        "ok" if reduction >= MIN_VF2_REDUCTION else "TOO_FEW_PRUNED",
    )
    total_off = off_counters.get("vf2.calls", 0)
    total_on = on_counters.get("vf2.calls", 0)
    table.add_row(
        "vf2.calls",
        total_off,
        total_on,
        total_off / total_on if total_on else float("inf"),
        "informational",
    )
    table.add_row(
        "filter_hit_rate",
        0,
        pruned,
        pruned / filtered if filtered else 0.0,
        f"{kept} kept",
    )
    table.add_row(
        "covindex.updates",
        0,
        on_counters.get("covindex.updates", 0),
        float(on_counters.get("covindex.dirty_graphs", 0)),
        "dirty graphs in ratio column",
    )
    table.add_row(
        "frag.cover_calls",
        frag_off_calls,
        frag_on_calls,
        frag_reduction,
        (
            "ok"
            if frag_covers_identical
            and frag_reduction >= FRAG_MIN_VF2_REDUCTION
            else ("MISMATCH" if not frag_covers_identical else "BELOW_FLOOR")
        ),
    )
    table.add_row(
        "frag.verifications",
        0,
        frag_counters.get("covindex.frag.verifications", 0),
        float(frag_counters.get("covindex.frag.pruned", 0)),
        "trajectory totals; pruned candidates in ratio column",
    )
    if numpy_available:
        filter_status = (
            ("ok" if speedup >= MIN_FILTER_SPEEDUP else "BELOW_FLOOR")
            if speedup_gated
            else "informational (gate at large scale)"
        )
        table.add_row(
            "filter_ns_per_round",
            round(int_per_round),
            round(numpy_per_round),
            speedup,
            filter_status,
        )
    else:
        table.add_row(
            "filter_ns_per_round",
            round(int_per_round),
            0,
            float("nan"),
            "numpy unavailable — int substrate only",
        )
    if probe is None:
        table.add_row(
            "fanout_bytes", 0, 0, float("nan"), "skipped (no fork)"
        )
    else:
        view_bytes, legacy_bytes, verdicts_match = probe
        bytes_ok = verdicts_match and view_bytes < legacy_bytes
        table.add_row(
            "fanout_bytes",
            legacy_bytes,
            view_bytes,
            legacy_bytes / view_bytes if view_bytes else float("inf"),
            (
                "view ships less"
                if bytes_ok
                else ("MISMATCH" if not verdicts_match else "NO_SAVINGS")
            ),
        )
    table.add_note(
        "trace = per-round (db ids, pattern keys, scov, lcov, "
        "classification, swaps); must be byte-identical across engine "
        "off / int substrate / numpy substrate"
    )
    table.add_note(
        "filter_ns_per_round = covindex.filter_ns per trajectory round; "
        "baseline column is the int substrate, engine_on is numpy"
    )
    table.add_note(
        "frag.cover_calls = the overlapping-pattern probe (16 patterns "
        "sharing one canonical core over filter-passing decoys): "
        "fragment network off vs on, identical covers required, "
        f"reduction floor {FRAG_MIN_VF2_REDUCTION:.1f}x"
    )
    if not identical:
        raise RuntimeError(
            "covix figure failed: engine/substrate/fragment trajectories "
            "diverged (soundness bug in the coverage filter, bitset "
            "substrate or fragment network)"
        )
    if not frag_covers_identical:
        raise RuntimeError(
            "covix figure failed: fragment-network covers diverged from "
            "the engine-only baseline on the overlapping-pattern probe"
        )
    if frag_reduction < FRAG_MIN_VF2_REDUCTION:
        raise RuntimeError(
            "covix figure failed: fragment-network VF2 call reduction "
            f"{frag_reduction:.2f}x below the "
            f"{FRAG_MIN_VF2_REDUCTION:.1f}x floor "
            f"({frag_off_calls} -> {frag_on_calls} vf2.cover_calls on "
            "the overlapping-pattern probe)"
        )
    if reduction < MIN_VF2_REDUCTION:
        raise RuntimeError(
            "covix figure failed: coverage VF2 call reduction "
            f"{reduction:.2f}x below the {MIN_VF2_REDUCTION:.1f}x floor "
            f"({off_calls} -> {on_calls} vf2.cover_calls)"
        )
    if speedup_gated and speedup < MIN_FILTER_SPEEDUP:
        raise RuntimeError(
            "covix figure failed: numpy filter-phase speedup "
            f"{speedup:.2f}x below the {MIN_FILTER_SPEEDUP:.1f}x floor "
            f"({int_per_round:.0f} -> {numpy_per_round:.0f} ns/round)"
        )
    if probe is not None:
        view_bytes, legacy_bytes, verdicts_match = probe
        if not verdicts_match:
            raise RuntimeError(
                "covix figure failed: view-kernel verdicts diverged from "
                "the host-shipping kernel"
            )
        if view_bytes >= legacy_bytes:
            raise RuntimeError(
                "covix figure failed: view fan-out pickled "
                f"{view_bytes} bytes, not less than the host-shipping "
                f"baseline's {legacy_bytes}"
            )
    return table


__all__ = [
    "FRAG_MIN_VF2_REDUCTION",
    "MIN_FILTER_SPEEDUP",
    "MIN_GATE_GRAPHS",
    "MIN_VF2_REDUCTION",
    "NUM_ROUNDS",
    "run",
]
