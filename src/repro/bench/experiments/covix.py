"""COVIX — coverage-engine equivalence, VF2 reduction, substrate speedup.

Not a paper figure: this driver validates the filter-then-verify
coverage engine (:mod:`repro.covindex`) the way the perf figure
validates the parallel and cache layers.

Three full MIDAS trajectories — bootstrap plus the paper's modification
grid applied *sequentially* — run from the same seed: engine off,
engine on over the plain-int reference substrate, and engine on over
the vectorized numpy substrate.  After every round the algorithmic
outcome is snapshotted: database IDs, the canonical keys of the
displayed pattern set, the set-level scov/lcov, the batch
classification and the executed swap count.  All traces must be
**identical** — the engine's posting-list filter and VF2 domain seeding
only skip work whose outcome is already decided, and the substrates
are observationally equivalent by construction, so any divergence is a
soundness bug and the driver raises (``repro bench`` reports FAILED and
exits non-zero; the scheduled CI job keys on this).

Two payoff gates:

* ``vf2.cover_calls`` — VF2 matcher invocations spent computing cover
  sets (verification loops plus the FCT prefilter's per-feature
  embedding counts), the work the engine exists to avoid.  The engine
  path must cut it by at least :data:`MIN_VF2_REDUCTION` ×.
* filter-phase wall clock — the ``covindex.filter_ns`` counter divided
  by rounds, per substrate, published as the trend gauges
  ``covindex.trend.filter_ns_per_round_int`` /
  ``covindex.trend.filter_ns_per_round_numpy`` /
  ``covindex.trend.filter_speedup``.  At gate scale
  (``base_graphs >= MIN_GATE_GRAPHS``, i.e. ``--scale large``) the
  numpy substrate must beat the int reference by at least
  :data:`MIN_FILTER_SPEEDUP` ×; below that the row is informational —
  tiny universes fit in a machine word either way and the comparison
  is noise (docs/PERFORMANCE.md).

A final probe measures what persistent workers ship across the process
boundary: the same containment fan-out runs once through the legacy
host-pickling kernel and once through ``contains_view_kernel`` against
a published :class:`~repro.parallel.shared.HostView`, comparing
``parallel.bytes_pickled`` deltas.  The view path must ship strictly
fewer bytes (and identical verdicts); the probe is skipped on
platforms without the ``fork`` start method.
"""

from __future__ import annotations

from ...cache.keys import graph_key
from ...covindex.bitset import available_substrates
from ...execution import ExecutionConfig
from ...graph.labeled_graph import LabeledGraph
from ...midas import Midas
from ...obs import get_registry
from ...parallel import (
    contains_kernel,
    contains_view_kernel,
    publish_view,
    retire_view,
)
from ...parallel.pool import KernelPool, _fork_context
from ...patterns import pattern_set_quality
from ..common import (
    DEFAULT_SCALE,
    ExperimentScale,
    batch_grid,
    dataset,
    default_config,
)
from ..harness import ExperimentTable

#: Minimum acceptable ratio of engine-off to engine-on
#: ``vf2.cover_calls`` over the whole trajectory.  The small-scale
#: workload measures well above this; the gate is the acceptance floor.
MIN_VF2_REDUCTION = 2.0

#: Minimum acceptable int/numpy filter-phase wall-clock-per-round ratio
#: at gate scale.  Below :data:`MIN_GATE_GRAPHS` the comparison is
#: reported but not enforced — sub-word universes make it noise.
MIN_FILTER_SPEEDUP = 2.0

#: Database size from which the filter-speedup gate arms (the ``large``
#: bench scale qualifies; ``small``/``medium`` stay informational).
MIN_GATE_GRAPHS = 400

#: Number of batch-grid rounds applied sequentially.  Each round's grid
#: is regenerated from the maintainer's *current* database so deletions
#: always reference live graph IDs.
NUM_ROUNDS = 4


def _round_signature(midas: Midas) -> tuple:
    """Everything algorithmic about the maintainer's current state."""
    quality = pattern_set_quality(midas.patterns, midas.oracle)
    return (
        tuple(sorted(midas.database.ids())),
        tuple(sorted(graph_key(g) for g in midas.pattern_graphs())),
        quality["scov"],
        quality["lcov"],
    )


def _trajectory(
    scale: ExperimentScale, covindex: bool, substrate: str | None = None
) -> tuple[list, dict[str, int]]:
    """Bootstrap + sequential batch grid; returns (trace, counter deltas)."""
    config = default_config(
        scale,
        execution=ExecutionConfig(covindex=covindex, substrate=substrate),
    )
    base = dataset("aids", scale.base_graphs, scale.seed)
    registry = get_registry()
    before = registry.counter_values()
    midas = Midas.bootstrap(base.copy(), config)
    trace: list = [("bootstrap", None, 0, _round_signature(midas))]
    for position in range(NUM_ROUNDS):
        batch_name, update = batch_grid(midas.database, scale, "aids")[
            position
        ]
        report = midas.apply_update(update)
        trace.append(
            (
                batch_name,
                report.is_major,
                report.num_swaps,
                _round_signature(midas),
                tuple(report.inserted_ids),
                tuple(report.deleted_ids),
            )
        )
    return trace, registry.counter_deltas(before)


def _fanout_bytes_probe(
    scale: ExperimentScale,
) -> tuple[int, int, bool] | None:
    """(view_bytes, legacy_bytes, verdicts_identical) — or None w/o fork.

    The same containment fan-out over the same hosts, once shipping
    only ``(graph_id, domains)`` against a published view and once
    pickling every host graph, both through a real 2-worker pool.
    """
    if _fork_context() is None:
        return None
    count = max(16, min(scale.base_graphs, 64))
    graphs = dict(dataset("aids", count, scale.seed).items())
    ids = sorted(graphs)
    pattern = LabeledGraph.from_edges({0: "C", 1: "C"}, [(0, 1)])
    registry = get_registry()
    view = publish_view(graphs)
    try:
        with KernelPool(2, force=True) as pool:
            before = registry.counter_values()
            view_verdicts = pool.map(
                contains_view_kernel,
                [(graph_id, None) for graph_id in ids],
                payload=(view.view_id, view.generation, pattern),
            )
            view_bytes = registry.counter_deltas(before).get(
                "parallel.bytes_pickled", 0
            )
            before = registry.counter_values()
            legacy_verdicts = pool.map(
                contains_kernel,
                [graphs[graph_id] for graph_id in ids],
                payload=pattern,
            )
            legacy_bytes = registry.counter_deltas(before).get(
                "parallel.bytes_pickled", 0
            )
    finally:
        retire_view(view.view_id)
    return view_bytes, legacy_bytes, view_verdicts == legacy_verdicts


def run(scale: ExperimentScale = DEFAULT_SCALE) -> ExperimentTable:
    rounds = NUM_ROUNDS + 1  # bootstrap counts: it filters too
    numpy_available = "numpy" in available_substrates()

    off_trace, off_counters = _trajectory(scale, covindex=False)
    int_trace, int_counters = _trajectory(
        scale, covindex=True, substrate="int"
    )
    if numpy_available:
        numpy_trace, numpy_counters = _trajectory(
            scale, covindex=True, substrate="numpy"
        )
    else:
        numpy_trace, numpy_counters = int_trace, int_counters

    identical = off_trace == int_trace == numpy_trace
    on_counters = numpy_counters if numpy_available else int_counters
    off_calls = off_counters.get("vf2.cover_calls", 0)
    on_calls = on_counters.get("vf2.cover_calls", 0)
    reduction = off_calls / on_calls if on_calls else float("inf")
    pruned = on_counters.get("covindex.candidates_pruned", 0)
    kept = on_counters.get("covindex.candidates_kept", 0)
    filtered = pruned + kept

    registry = get_registry()
    int_per_round = int_counters.get("covindex.filter_ns", 0) / rounds
    registry.gauge("covindex.trend.filter_ns_per_round_int").set(
        int_per_round
    )
    speedup_gated = numpy_available and scale.base_graphs >= MIN_GATE_GRAPHS
    if numpy_available:
        numpy_per_round = (
            numpy_counters.get("covindex.filter_ns", 0) / rounds
        )
        speedup = (
            int_per_round / numpy_per_round
            if numpy_per_round
            else float("inf")
        )
        registry.gauge("covindex.trend.filter_ns_per_round_numpy").set(
            numpy_per_round
        )
        registry.gauge("covindex.trend.filter_speedup").set(speedup)
    else:
        numpy_per_round = 0.0
        speedup = float("nan")

    probe = _fanout_bytes_probe(scale)

    table = ExperimentTable(
        title=(
            "Covix — coverage engine off/int/numpy: identical results, "
            f"{NUM_ROUNDS}-round AIDS-like trajectory"
        ),
        columns=["measure", "baseline", "engine_on", "ratio", "status"],
    )
    table.add_row(
        "trace",
        len(off_trace),
        len(numpy_trace),
        1.0,
        "identical" if identical else "MISMATCH",
    )
    table.add_row(
        "vf2.cover_calls",
        off_calls,
        on_calls,
        reduction,
        "ok" if reduction >= MIN_VF2_REDUCTION else "TOO_FEW_PRUNED",
    )
    total_off = off_counters.get("vf2.calls", 0)
    total_on = on_counters.get("vf2.calls", 0)
    table.add_row(
        "vf2.calls",
        total_off,
        total_on,
        total_off / total_on if total_on else float("inf"),
        "informational",
    )
    table.add_row(
        "filter_hit_rate",
        0,
        pruned,
        pruned / filtered if filtered else 0.0,
        f"{kept} kept",
    )
    table.add_row(
        "covindex.updates",
        0,
        on_counters.get("covindex.updates", 0),
        float(on_counters.get("covindex.dirty_graphs", 0)),
        "dirty graphs in ratio column",
    )
    if numpy_available:
        filter_status = (
            ("ok" if speedup >= MIN_FILTER_SPEEDUP else "BELOW_FLOOR")
            if speedup_gated
            else "informational (gate at large scale)"
        )
        table.add_row(
            "filter_ns_per_round",
            round(int_per_round),
            round(numpy_per_round),
            speedup,
            filter_status,
        )
    else:
        table.add_row(
            "filter_ns_per_round",
            round(int_per_round),
            0,
            float("nan"),
            "numpy unavailable — int substrate only",
        )
    if probe is None:
        table.add_row(
            "fanout_bytes", 0, 0, float("nan"), "skipped (no fork)"
        )
    else:
        view_bytes, legacy_bytes, verdicts_match = probe
        bytes_ok = verdicts_match and view_bytes < legacy_bytes
        table.add_row(
            "fanout_bytes",
            legacy_bytes,
            view_bytes,
            legacy_bytes / view_bytes if view_bytes else float("inf"),
            (
                "view ships less"
                if bytes_ok
                else ("MISMATCH" if not verdicts_match else "NO_SAVINGS")
            ),
        )
    table.add_note(
        "trace = per-round (db ids, pattern keys, scov, lcov, "
        "classification, swaps); must be byte-identical across engine "
        "off / int substrate / numpy substrate"
    )
    table.add_note(
        "filter_ns_per_round = covindex.filter_ns per trajectory round; "
        "baseline column is the int substrate, engine_on is numpy"
    )
    if not identical:
        raise RuntimeError(
            "covix figure failed: engine/substrate trajectories diverged "
            "(soundness bug in the coverage filter or bitset substrate)"
        )
    if reduction < MIN_VF2_REDUCTION:
        raise RuntimeError(
            "covix figure failed: coverage VF2 call reduction "
            f"{reduction:.2f}x below the {MIN_VF2_REDUCTION:.1f}x floor "
            f"({off_calls} -> {on_calls} vf2.cover_calls)"
        )
    if speedup_gated and speedup < MIN_FILTER_SPEEDUP:
        raise RuntimeError(
            "covix figure failed: numpy filter-phase speedup "
            f"{speedup:.2f}x below the {MIN_FILTER_SPEEDUP:.1f}x floor "
            f"({int_per_round:.0f} -> {numpy_per_round:.0f} ns/round)"
        )
    if probe is not None:
        view_bytes, legacy_bytes, verdicts_match = probe
        if not verdicts_match:
            raise RuntimeError(
                "covix figure failed: view-kernel verdicts diverged from "
                "the host-shipping kernel"
            )
        if view_bytes >= legacy_bytes:
            raise RuntimeError(
                "covix figure failed: view fan-out pickled "
                f"{view_bytes} bytes, not less than the host-shipping "
                f"baseline's {legacy_bytes}"
            )
    return table


__all__ = [
    "MIN_FILTER_SPEEDUP",
    "MIN_GATE_GRAPHS",
    "MIN_VF2_REDUCTION",
    "NUM_ROUNDS",
    "run",
]
