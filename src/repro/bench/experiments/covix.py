"""COVIX — coverage-engine equivalence and VF2-call reduction.

Not a paper figure: this driver validates the filter-then-verify
coverage engine (:mod:`repro.covindex`) the way the perf figure
validates the parallel and cache layers.

Two full MIDAS trajectories — bootstrap plus the paper's modification
grid applied *sequentially* — run from the same seed, one with
``ExecutionConfig(covindex=False)`` and one with ``covindex=True``.
After every round the algorithmic outcome is snapshotted: database IDs,
the canonical keys of the displayed pattern set, the set-level
scov/lcov, the batch classification and the executed swap count.  The
two traces must be **identical** — the engine's posting-list filter and
VF2 domain seeding only skip work whose outcome is already decided, so
any divergence is a soundness bug and the driver raises (``repro bench``
reports FAILED and exits non-zero; the scheduled CI job keys on this).

The payoff column is ``vf2.cover_calls``: VF2 matcher invocations spent
computing cover sets (verification loops plus the FCT prefilter's
per-feature embedding counts) — the work the engine exists to avoid.
The engine path must cut it by at least :data:`MIN_VF2_REDUCTION` ×,
otherwise the figure fails — a filter that stops filtering is a silent
perf regression.  Total ``vf2.calls`` (which also includes tree mining
and FCT-pool support counting, subsystems the engine does not touch) is
reported for context but not gated.
"""

from __future__ import annotations

from ...cache.keys import graph_key
from ...execution import ExecutionConfig
from ...midas import Midas
from ...obs import get_registry
from ...patterns import pattern_set_quality
from ..common import (
    DEFAULT_SCALE,
    ExperimentScale,
    batch_grid,
    dataset,
    default_config,
)
from ..harness import ExperimentTable

#: Minimum acceptable ratio of engine-off to engine-on
#: ``vf2.cover_calls`` over the whole trajectory.  The small-scale
#: workload measures well above this; the gate is the acceptance floor.
MIN_VF2_REDUCTION = 2.0

#: Number of batch-grid rounds applied sequentially.  Each round's grid
#: is regenerated from the maintainer's *current* database so deletions
#: always reference live graph IDs.
NUM_ROUNDS = 4


def _round_signature(midas: Midas) -> tuple:
    """Everything algorithmic about the maintainer's current state."""
    quality = pattern_set_quality(midas.patterns, midas.oracle)
    return (
        tuple(sorted(midas.database.ids())),
        tuple(sorted(graph_key(g) for g in midas.pattern_graphs())),
        quality["scov"],
        quality["lcov"],
    )


def _trajectory(
    scale: ExperimentScale, covindex: bool
) -> tuple[list, dict[str, int]]:
    """Bootstrap + sequential batch grid; returns (trace, counter deltas)."""
    config = default_config(
        scale, execution=ExecutionConfig(covindex=covindex)
    )
    base = dataset("aids", scale.base_graphs, scale.seed)
    registry = get_registry()
    before = registry.counter_values()
    midas = Midas.bootstrap(base.copy(), config)
    trace: list = [("bootstrap", None, 0, _round_signature(midas))]
    for position in range(NUM_ROUNDS):
        batch_name, update = batch_grid(midas.database, scale, "aids")[
            position
        ]
        report = midas.apply_update(update)
        trace.append(
            (
                batch_name,
                report.is_major,
                report.num_swaps,
                _round_signature(midas),
                tuple(report.inserted_ids),
                tuple(report.deleted_ids),
            )
        )
    return trace, registry.counter_deltas(before)


def run(scale: ExperimentScale = DEFAULT_SCALE) -> ExperimentTable:
    off_trace, off_counters = _trajectory(scale, covindex=False)
    on_trace, on_counters = _trajectory(scale, covindex=True)

    identical = off_trace == on_trace
    off_calls = off_counters.get("vf2.cover_calls", 0)
    on_calls = on_counters.get("vf2.cover_calls", 0)
    reduction = off_calls / on_calls if on_calls else float("inf")
    pruned = on_counters.get("covindex.candidates_pruned", 0)
    kept = on_counters.get("covindex.candidates_kept", 0)
    filtered = pruned + kept

    table = ExperimentTable(
        title=(
            "Covix — coverage engine off vs on: identical results, "
            f"{NUM_ROUNDS}-round AIDS-like trajectory"
        ),
        columns=["measure", "engine_off", "engine_on", "ratio", "status"],
    )
    table.add_row(
        "trace",
        len(off_trace),
        len(on_trace),
        1.0,
        "identical" if identical else "MISMATCH",
    )
    table.add_row(
        "vf2.cover_calls",
        off_calls,
        on_calls,
        reduction,
        "ok" if reduction >= MIN_VF2_REDUCTION else "TOO_FEW_PRUNED",
    )
    total_off = off_counters.get("vf2.calls", 0)
    total_on = on_counters.get("vf2.calls", 0)
    table.add_row(
        "vf2.calls",
        total_off,
        total_on,
        total_off / total_on if total_on else float("inf"),
        "informational",
    )
    table.add_row(
        "filter_hit_rate",
        0,
        pruned,
        pruned / filtered if filtered else 0.0,
        f"{kept} kept",
    )
    table.add_row(
        "covindex.updates",
        0,
        on_counters.get("covindex.updates", 0),
        float(on_counters.get("covindex.dirty_graphs", 0)),
        "dirty graphs in ratio column",
    )
    table.add_note(
        "trace = per-round (db ids, pattern keys, scov, lcov, "
        "classification, swaps); must be byte-identical engine on vs off"
    )
    if not identical:
        raise RuntimeError(
            "covix figure failed: engine-on trajectory diverged from "
            "engine-off (soundness bug in the coverage filter)"
        )
    if reduction < MIN_VF2_REDUCTION:
        raise RuntimeError(
            "covix figure failed: coverage VF2 call reduction "
            f"{reduction:.2f}x below the {MIN_VF2_REDUCTION:.1f}x floor "
            f"({off_calls} -> {on_calls} vf2.cover_calls)"
        )
    return table


__all__ = ["MIN_VF2_REDUCTION", "NUM_ROUNDS", "run"]
