"""E-FIG9 — the user study on PubChem (paper Figure 9).

The paper adds 6K graphs to PubChem23K, then has 25 participants
formulate three sets of five queries (all-old / mixed / all-new) with
pattern sets from MIDAS, CATAPULT (from scratch), CATAPULT++ (from
scratch) and NoMaintain, measuring QFT, steps and VMT.

This driver reproduces the design at reduced scale with the simulated
user (DESIGN.md substitution): a PubChem-like base, a boronic-ester
family batch of ~26% of the base size, the same three query mixes, and
five simulated trials per query.  Expected shape (paper): MIDAS ≤
CATAPULT++/CATAPULT < NoMaintain on QFT and steps, with the gap widest
on Qs3 (all-new queries); VMT comparable across approaches.
"""

from __future__ import annotations

from ...datasets import family_injection
from ...midas import Midas, NoMaintainBaseline, from_scratch
from ...workload import run_user_study, study_query_sets
from ..common import ExperimentScale, DEFAULT_SCALE, dataset, default_config
from ..harness import ExperimentTable


def run(scale: ExperimentScale = DEFAULT_SCALE) -> ExperimentTable:
    config = default_config(scale)
    base = dataset("pubchem", scale.base_graphs, scale.seed)
    update = family_injection(
        scale.family_batch,
        "boronic_ester",
        None,
        seed=scale.seed + 100,
    )

    midas = Midas.bootstrap(base, config)
    nomaintain = NoMaintainBaseline(config, base.copy(), midas.patterns.copy())
    report = midas.apply_update(update)
    nomaintain.apply_update(update)
    catapult_patterns, _, _ = from_scratch(base, update, config, plus_plus=False)
    catapult_pp_patterns, _, updated = from_scratch(
        base, update, config, plus_plus=True
    )

    pattern_sets = {
        "midas": midas.pattern_graphs(),
        "catapult": [p.graph for p in catapult_patterns],
        "catapult++": [p.graph for p in catapult_pp_patterns],
        "nomaintain": nomaintain.pattern_graphs(),
    }
    lo, hi = scale.query_sizes
    query_sets = study_query_sets(
        midas.database,
        report.inserted_ids,
        queries_per_set=5,
        size_range=(max(lo, 8), hi),
        seed=scale.seed,
    )

    table = ExperimentTable(
        title="Fig 9 — user study (PubChem-like): QFT [s] / steps / VMT [s]",
        columns=["query set", "approach", "qft", "steps", "vmt"],
    )
    for set_name in ("Qs1", "Qs2", "Qs3"):
        study = run_user_study(
            pattern_sets,
            query_sets[set_name],
            trials_per_query=5,
            seed=scale.seed,
        )
        for approach in ("midas", "catapult", "catapult++", "nomaintain"):
            metrics = study[approach]
            table.add_row(
                set_name,
                approach,
                metrics["qft"],
                metrics["steps"],
                metrics["vmt"],
            )
    table.add_note(
        "paper shape: MIDAS fastest (up to 29.5% faster QFT, 22.9% fewer "
        "steps than NoMaintain), gaps widest on Qs3; VMT comparable"
    )
    _ = updated
    return table
