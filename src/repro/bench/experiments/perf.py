"""PERF — parallel-kernel determinism and canonical-form cache speedup.

Not a paper figure: this driver validates the two performance layers the
reproduction adds on top of MIDAS (``repro.parallel`` and ``repro.cache``)
and reports their effect in one table.

* **Determinism.**  The pairwise-GED matrix is computed serially and then
  through real forked worker pools (2 and 4 workers).  Any divergence is a
  hard failure — the driver raises, ``repro bench`` reports the figure as
  FAILED and exits non-zero, which is what the scheduled CI job keys on.
* **Cache speedup.**  The same matrix plus the graphlet distributions are
  computed cold (empty caches) and warm (second pass).  Because cache keys
  are canonical-form certificates, the warm pass must reproduce the cold
  pass byte-for-byte; that is asserted too.

Speedups are wall-clock and machine-dependent: on a single-core runner the
worker pools show overhead rather than speedup (the determinism guarantee
is what is being exercised), while the warm-cache pass is orders of
magnitude faster everywhere.
"""

from __future__ import annotations

import time

from ...cache.stores import get_caches, use_caching
from ...graphlets.distribution import GraphletDistribution
from ...obs import get_registry
from ...parallel.kernels import pairwise_ged_matrix
from ...parallel.pool import KernelPool
from ..common import DEFAULT_SCALE, ExperimentScale, dataset
from ..harness import ExperimentTable

#: GED method for the matrix: the most expensive rung the maintainer uses
#: without exact search, so the cache effect is representative.
GED_METHOD = "beam"

WORKER_COUNTS = (2, 4)


def _graph_subset(scale: ExperimentScale, profile_name: str):
    database = dataset(profile_name, scale.base_graphs, scale.seed)
    count = max(8, min(16, scale.base_graphs // 5))
    items = sorted(database.items())[:count]
    return [graph for _, graph in items]


def run(
    scale: ExperimentScale = DEFAULT_SCALE, profile_name: str = "pubchem"
) -> ExperimentTable:
    graphs = _graph_subset(scale, profile_name)
    pair_count = len(graphs) * (len(graphs) - 1) // 2
    table = ExperimentTable(
        title=(
            f"Perf — {len(graphs)} {profile_name}-like graphs, "
            f"{pair_count} GED pairs ({GED_METHOD}): determinism + caching"
        ),
        columns=["workload", "mode", "time_s", "speedup", "status"],
    )

    # ------------------------------------------------------------ parallel
    # Explicit pools (not the ambient one) so the serial baseline stays
    # serial even when the CLI installed a shared worker pool, and caching
    # force-disabled so an ambient ``--cache on`` cannot pre-warm the
    # worker runs and fake a speedup.
    mismatches = []
    fanout_times = []
    with use_caching(False):
        start = time.perf_counter()
        serial = pairwise_ged_matrix(
            graphs, method=GED_METHOD, pool=KernelPool(1)
        )
        serial_s = time.perf_counter() - start
        table.add_row("ged_matrix", "serial", serial_s, 1.0, "baseline")
        for workers in WORKER_COUNTS:
            # force=True: real forked workers even under pytest.
            with KernelPool(workers, force=True) as pool:
                start = time.perf_counter()
                result = pairwise_ged_matrix(
                    graphs, method=GED_METHOD, pool=pool
                )
                elapsed = time.perf_counter() - start
            identical = result == serial
            if not identical:
                mismatches.append(workers)
            fanout_times.append(elapsed)
            table.add_row(
                "ged_matrix",
                f"workers={workers}",
                elapsed,
                serial_s / elapsed if elapsed else float("inf"),
                "identical" if identical else "MISMATCH",
            )
    # Wall-clock trend record for the scheduled perf run: serial vs the
    # best persistent-worker fan-out (docs/OBSERVABILITY.md).
    registry = get_registry()
    registry.gauge("parallel.trend.ged_serial_seconds").set(serial_s)
    registry.gauge("parallel.trend.ged_fanout_seconds").set(
        min(fanout_times) if fanout_times else serial_s
    )

    # ------------------------------------------------------------- caching
    stale = []
    with use_caching(True):
        get_caches().clear()
        start = time.perf_counter()
        cold = pairwise_ged_matrix(
            graphs, method=GED_METHOD, pool=KernelPool(1)
        )
        cold_s = time.perf_counter() - start
        start = time.perf_counter()
        warm = pairwise_ged_matrix(
            graphs, method=GED_METHOD, pool=KernelPool(1)
        )
        warm_s = time.perf_counter() - start
        if cold != serial or warm != serial:
            stale.append("ged_matrix")
        registry.gauge("cache.trend.ged_cold_seconds").set(cold_s)
        registry.gauge("cache.trend.ged_warm_seconds").set(warm_s)
        table.add_row("ged_matrix", "cache_cold", cold_s, 1.0, "baseline")
        table.add_row(
            "ged_matrix",
            "cache_warm",
            warm_s,
            cold_s / warm_s if warm_s else float("inf"),
            "identical" if warm == serial else "STALE",
        )

        get_caches().graphlets.clear()
        start = time.perf_counter()
        cold_gfd = GraphletDistribution(dict(enumerate(graphs)))
        gfd_cold_s = time.perf_counter() - start
        start = time.perf_counter()
        warm_gfd = GraphletDistribution(dict(enumerate(graphs)))
        gfd_warm_s = time.perf_counter() - start
        if list(cold_gfd.frequencies()) != list(warm_gfd.frequencies()):
            stale.append("graphlets")
        table.add_row("graphlets", "cache_cold", gfd_cold_s, 1.0, "baseline")
        table.add_row(
            "graphlets",
            "cache_warm",
            gfd_warm_s,
            gfd_cold_s / gfd_warm_s if gfd_warm_s else float("inf"),
            "identical"
            if list(cold_gfd.frequencies()) == list(warm_gfd.frequencies())
            else "STALE",
        )
        get_caches().clear()

    table.add_note(
        "speedups are wall-clock; on a 1-core runner the worker pools show "
        "overhead, not speedup — the determinism columns are the contract"
    )
    if mismatches or stale:
        raise RuntimeError(
            "perf figure failed: "
            f"parallel mismatches at workers={mismatches}, stale caches in "
            f"{stale}"
        )
    return table


__all__ = ["GED_METHOD", "run"]
