"""E-FIG14 — MIDAS vs CATAPULT / CATAPULT++ / Random on AIDS-like data
(paper Figure 14, Exp 3b).

Across the batch grid the paper reports: MIDAS's maintenance time is
comparable to Random (the fastest) and up to an order of magnitude
faster than from-scratch CATAPULT; MIDAS's pattern quality matches or
beats the from-scratch selectors; MIDAS has the lowest MP and wins the
μ step-reduction comparison; multi-scan swapping beats random swapping.

Each grid row bootstraps fresh state, applies the batch under every
approach and evaluates on one shared balanced query set.
"""

from __future__ import annotations

from ...midas import Midas, RandomSwapMaintainer, from_scratch
from ...patterns import PatternSet, pattern_set_quality
from ...workload import (
    balanced_query_set,
    compare_step_reduction,
    evaluate_patterns,
)
from ..common import (
    DEFAULT_SCALE,
    ExperimentScale,
    batch_grid,
    dataset,
    default_config,
)
from ..harness import ExperimentTable


def _quality(patterns, oracle):
    pattern_set = PatternSet()
    for graph in patterns:
        try:
            pattern_set.add(graph, "eval")
        except ValueError:
            continue
    return pattern_set_quality(pattern_set, oracle)


def run(
    scale: ExperimentScale = DEFAULT_SCALE, profile_name: str = "aids"
) -> ExperimentTable:
    config = default_config(scale)
    base = dataset(profile_name, scale.base_graphs, scale.seed)
    table = ExperimentTable(
        title=(
            f"Fig {'14' if profile_name == 'aids' else '15'} — baselines on "
            f"{profile_name}-like: time [s], MP %, μ vs MIDAS, quality"
        ),
        columns=[
            "batch",
            "approach",
            "time_s",
            "mp_percent",
            "mu_vs_midas",
            "scov",
            "lcov",
            "div",
            "cog",
        ],
    )
    for batch_name, update in batch_grid(base, scale, profile_name):
        midas = Midas.bootstrap(base, config)
        random_maintainer = RandomSwapMaintainer(
            config,
            base.copy(),
            _clone_state(midas, base, config),
        )
        midas_report = midas.apply_update(update)
        random_report = random_maintainer.apply_update(update)
        catapult_patterns, catapult_watch, _ = from_scratch(
            base, update, config, plus_plus=False
        )
        catapult_pp_patterns, catapult_pp_watch, _ = from_scratch(
            base, update, config, plus_plus=True
        )
        queries = balanced_query_set(
            midas.database,
            midas_report.inserted_ids,
            count=scale.queries,
            size_range=scale.query_sizes,
            seed=scale.seed + 41,
        )
        rows = {
            "midas": (
                midas.pattern_graphs(),
                midas_report.pattern_maintenance_seconds,
            ),
            "random": (
                random_maintainer.pattern_graphs(),
                random_report.pattern_maintenance_seconds,
            ),
            "catapult": (
                [p.graph for p in catapult_patterns],
                catapult_watch.total(),
            ),
            "catapult++": (
                [p.graph for p in catapult_pp_patterns],
                catapult_pp_watch.total(),
            ),
        }
        midas_result = evaluate_patterns(
            "midas", rows["midas"][0], queries
        )
        for approach, (patterns, seconds) in rows.items():
            workload = (
                midas_result
                if approach == "midas"
                else evaluate_patterns(approach, patterns, queries)
            )
            quality = _quality(patterns, midas.oracle)
            mu = compare_step_reduction(workload, midas_result)
            table.add_row(
                batch_name,
                approach,
                seconds,
                workload.missed_percentage,
                mu,
                quality["scov"],
                quality["lcov"],
                quality["div"],
                quality["cog"],
            )
    table.add_note(
        "paper shape: MIDAS time ~ Random << CATAPULT; MIDAS lowest MP, "
        "μ ≥ 0 against every baseline, quality comparable or better"
    )
    return table


def _clone_state(midas: Midas, base, config):
    """Independent bootstrap state for the Random baseline."""
    from ..common import _result_of

    fresh = Midas.bootstrap(base, config)
    return _result_of(fresh)
