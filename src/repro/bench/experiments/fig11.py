"""E-FIG11 — threshold sensitivity (paper Figure 11, Exp 1).

The paper varies the evolution ratio threshold ε and the swapping
thresholds κ = λ on AIDS25K with a +5K batch, reporting pattern
maintenance time (PMT), clustering time and quality, and comparing
against CATAPULT++ from scratch (MIDAS is up to two orders of magnitude
faster in PMT).

Reproduced on an AIDS-like base with a proportional batch.  Each ε row
re-runs one maintenance round with the threshold; the ε values sweep
around the scaled default (the synthetic GFDs are more stable than the
paper's datasets, hence the smaller absolute values — see MidasConfig).
"""

from __future__ import annotations

from ...datasets import random_insertions
from ...midas import Midas, from_scratch
from ...patterns import pattern_set_quality
from ..common import ExperimentScale, DEFAULT_SCALE, dataset, default_config
from ..harness import ExperimentTable

EPSILON_SWEEP = (0.0005, 0.001, 0.002, 0.004)
KAPPA_SWEEP = (0.05, 0.1, 0.2, 0.4)


def run(scale: ExperimentScale = DEFAULT_SCALE) -> tuple[ExperimentTable, ExperimentTable]:
    base = dataset("aids", scale.base_graphs, scale.seed)
    update = random_insertions(
        base, scale.batch_percent, None, seed=scale.seed + 1
    )

    epsilon_table = ExperimentTable(
        title="Fig 11a — varying ε: PMT [s], cluster time [s], major?, quality",
        columns=["epsilon", "pmt", "cluster_time", "major", "scov", "div", "cog"],
    )
    for epsilon in EPSILON_SWEEP:
        config = default_config(scale, epsilon=epsilon)
        midas = Midas.bootstrap(base, config)
        report = midas.apply_update(update)
        quality = pattern_set_quality(midas.patterns, midas.oracle)
        epsilon_table.add_row(
            epsilon,
            report.pattern_maintenance_seconds,
            report.cluster_maintenance_seconds,
            int(report.is_major),
            quality["scov"],
            quality["div"],
            quality["cog"],
        )
    # The from-scratch CATAPULT++ reference the PMT speedup is against.
    _, scratch_watch, _ = from_scratch(
        base, update, default_config(scale), plus_plus=True
    )
    epsilon_table.add_note(
        f"CATAPULT++ from scratch: {scratch_watch.total():.2f}s total "
        f"({scratch_watch.get('clustering') + scratch_watch.get('mining'):.2f}s "
        "mining+clustering) — paper: MIDAS up to two orders faster in PMT"
    )

    kappa_table = ExperimentTable(
        title="Fig 11b — varying κ=λ: PMT [s], PGT [s], swaps, scov",
        columns=["kappa", "pmt", "pgt", "swaps", "scov"],
    )
    for kappa in KAPPA_SWEEP:
        config = default_config(scale, kappa=kappa, lambda_=kappa)
        midas = Midas.bootstrap(base, config)
        report = midas.apply_update(update)
        quality = pattern_set_quality(midas.patterns, midas.oracle)
        kappa_table.add_row(
            kappa,
            report.pattern_maintenance_seconds,
            report.pattern_generation_seconds,
            report.num_swaps,
            quality["scov"],
        )
    kappa_table.add_note(
        "paper shape: PMT/PGT largely flat in κ; κ=λ=0.1 is the default"
    )
    return epsilon_table, kappa_table
