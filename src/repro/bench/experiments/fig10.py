"""E-FIG10 — user study with user-specified queries (paper Figure 10).

Participants formulated free-form queries of their own design on each of
the three datasets; the paper reports average QFT, steps and VMT per
approach and dataset, with MIDAS lowest on all three measures.

Reproduced with the simulated user: "user-specified" queries are random
connected subgraphs drawn from the *whole updated* database (old and new
regions alike, any topology), 5 queries per simulated user and 5 users.
"""

from __future__ import annotations

from ...datasets import family_injection
from ...midas import Midas, NoMaintainBaseline, from_scratch
from ...workload import generate_queries, run_user_study
from ..common import ExperimentScale, DEFAULT_SCALE, dataset, default_config
from ..harness import ExperimentTable


def run(scale: ExperimentScale = DEFAULT_SCALE) -> ExperimentTable:
    table = ExperimentTable(
        title="Fig 10 — user-specified queries: avg QFT [s] / steps / VMT [s]",
        columns=["dataset", "approach", "qft", "steps", "vmt"],
    )
    for dataset_name in ("pubchem", "aids", "emol"):
        config = default_config(scale)
        base = dataset(dataset_name, scale.base_graphs, scale.seed)
        update = family_injection(
            scale.family_batch, "boronic_ester", None, seed=scale.seed + 7
        )
        midas = Midas.bootstrap(base, config)
        nomaintain = NoMaintainBaseline(
            config, base.copy(), midas.patterns.copy()
        )
        midas.apply_update(update)
        nomaintain.apply_update(update)
        catapult_patterns, _, _ = from_scratch(
            base, update, config, plus_plus=False
        )
        catapult_pp_patterns, _, _ = from_scratch(
            base, update, config, plus_plus=True
        )
        pattern_sets = {
            "midas": midas.pattern_graphs(),
            "catapult": [p.graph for p in catapult_patterns],
            "catapult++": [p.graph for p in catapult_pp_patterns],
            "nomaintain": nomaintain.pattern_graphs(),
        }
        lo, hi = scale.query_sizes
        # 5 simulated users × 5 self-chosen queries each.
        queries = generate_queries(
            dict(midas.database.items()),
            count=25,
            size_range=(max(lo, 6), hi),
            seed=scale.seed + 13,
        )
        study = run_user_study(
            pattern_sets, queries, trials_per_query=1, seed=scale.seed
        )
        for approach in ("midas", "catapult", "catapult++", "nomaintain"):
            metrics = study[approach]
            table.add_row(
                dataset_name,
                approach,
                metrics["qft"],
                metrics["steps"],
                metrics["vmt"],
            )
    table.add_note(
        "paper shape: MIDAS takes the least QFT, steps and VMT on average "
        "for all datasets"
    )
    return table
