"""Benchmark harness and per-figure experiment drivers."""

from .common import (
    DEFAULT_SCALE,
    ExperimentScale,
    batch_grid,
    bootstrap_approaches,
    dataset,
    default_config,
    scaled,
)
from .harness import ExperimentTable, series_summary

__all__ = [
    "DEFAULT_SCALE",
    "ExperimentScale",
    "ExperimentTable",
    "batch_grid",
    "bootstrap_approaches",
    "dataset",
    "default_config",
    "scaled",
    "series_summary",
]
