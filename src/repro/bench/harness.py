"""Experiment harness utilities: table/series printing and run caching.

Every benchmark in ``benchmarks/`` regenerates one table or figure of the
paper.  The drivers in :mod:`repro.bench.experiments` return structured
:class:`ExperimentTable` objects; this module renders them in the fixed
row/column layout the paper reports so the console output can be read
side by side with the original figures.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field


@dataclass
class ExperimentTable:
    """A printable experiment result: named columns, ordered rows."""

    title: str
    columns: Sequence[str]
    rows: list[Sequence[object]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values: object) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values, got {len(values)}"
            )
        self.rows.append(values)

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    # ------------------------------------------------------------------
    def _formatted(self, value: object) -> str:
        if isinstance(value, float):
            if value == 0:
                return "0"
            if abs(value) >= 1000:
                return f"{value:.0f}"
            if abs(value) >= 1:
                return f"{value:.2f}"
            return f"{value:.4f}"
        return str(value)

    def render(self) -> str:
        """Fixed-width table rendering."""
        header = [str(c) for c in self.columns]
        body = [
            [self._formatted(v) for v in row] for row in self.rows
        ]
        widths = [
            max(len(header[i]), *(len(r[i]) for r in body))
            if body
            else len(header[i])
            for i in range(len(header))
        ]
        lines = [f"== {self.title} =="]
        lines.append(
            "  ".join(h.ljust(widths[i]) for i, h in enumerate(header))
        )
        lines.append("  ".join("-" * w for w in widths))
        for row in body:
            lines.append(
                "  ".join(v.ljust(widths[i]) for i, v in enumerate(row))
            )
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def show(self) -> None:
        print(self.render())

    def column_values(self, column: str) -> list[object]:
        index = list(self.columns).index(column)
        return [row[index] for row in self.rows]


def series_summary(name: str, values: Sequence[float]) -> str:
    """One-line min/avg/max summary for a figure series."""
    if not values:
        return f"{name}: (empty)"
    avg = sum(values) / len(values)
    return (
        f"{name}: min={min(values):.3f} avg={avg:.3f} max={max(values):.3f}"
    )
