"""Shared scaffolding for the experiment drivers.

The paper's experiments run on 10K–1M-graph chemical repositories with a
Java implementation; this pure-Python reproduction scales every dataset
down ~100× (see DESIGN.md) and keeps the *comparative* structure: same
batch grids, same approaches, same measures.  :class:`ExperimentScale`
centralises the scaled sizes so each benchmark can also be run larger
from the command line.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..datasets import (
    MoleculeProfile,
    aids_profile,
    emol_profile,
    family_injection,
    make_molecule_database,
    mixed_update,
    pubchem_profile,
    random_deletions,
    random_insertions,
)
from ..graph.database import BatchUpdate, GraphDatabase
from ..midas import Midas, MidasConfig, NoMaintainBaseline, RandomSwapMaintainer
from ..patterns import PatternBudget


@dataclass(frozen=True)
class ExperimentScale:
    """Scaled-down experiment sizing (defaults sized for CI runs)."""

    base_graphs: int = 120
    batch_percent: float = 20.0
    family_batch: int = 40
    queries: int = 120
    query_sizes: tuple[int, int] = (4, 22)
    gamma: int = 12
    eta_min: int = 3
    eta_max: int = 8
    sample_cap: int = 150
    num_clusters: int = 5
    seed: int = 7


DEFAULT_SCALE = ExperimentScale()


def scaled(scale: ExperimentScale | None = None, **overrides) -> ExperimentScale:
    return replace(scale or DEFAULT_SCALE, **overrides)


def default_config(scale: ExperimentScale, **overrides) -> MidasConfig:
    """The default MIDAS configuration at a given scale."""
    parameters = {
        "budget": PatternBudget(scale.eta_min, scale.eta_max, scale.gamma),
        "sup_min": 0.5,
        "num_clusters": scale.num_clusters,
        "sample_cap": scale.sample_cap,
        "seed": scale.seed,
        "epsilon": 0.002,
        "kappa": 0.1,
        "lambda_": 0.1,
    }
    parameters.update(overrides)
    return MidasConfig(**parameters)


PROFILES: dict[str, MoleculeProfile] = {
    "aids": aids_profile(),
    "pubchem": pubchem_profile(),
    "emol": emol_profile(),
}


def dataset(name: str, count: int, seed: int) -> GraphDatabase:
    """A scaled stand-in for one of the paper's datasets."""
    try:
        profile = PROFILES[name]
    except KeyError:
        raise KeyError(f"unknown dataset {name!r}; choose from {sorted(PROFILES)}")
    return make_molecule_database(count, profile, seed)


def batch_grid(
    database: GraphDatabase,
    scale: ExperimentScale,
    profile_name: str = "aids",
) -> list[tuple[str, BatchUpdate]]:
    """The paper's modification grid: ±Y% batches plus a family batch."""
    profile = PROFILES[profile_name]
    percent = scale.batch_percent
    return [
        (f"+{percent:.0f}%", random_insertions(database, percent, profile, scale.seed + 1)),
        (f"-{percent / 2:.0f}%", random_deletions(database, percent / 2, scale.seed + 2)),
        (
            f"+{percent / 2:.0f}%/-{percent / 2:.0f}%",
            mixed_update(database, percent / 2, percent / 2, profile, scale.seed + 3),
        ),
        (
            "family",
            family_injection(
                scale.family_batch, "boronic_ester", profile, scale.seed + 4
            ),
        ),
    ]


def bootstrap_approaches(
    database: GraphDatabase, config: MidasConfig
) -> dict[str, object]:
    """MIDAS, Random and NoMaintain sharing one bootstrap state.

    Each maintainer gets its own database copy and pattern-set copy so
    maintenance rounds do not interfere.
    """
    midas = Midas.bootstrap(database, config)
    random_state = Midas.bootstrap(database, config)  # independent state
    random_maintainer = RandomSwapMaintainer(
        config, random_state.database, _result_of(random_state)
    )
    nomaintain = NoMaintainBaseline(
        config, database.copy(), midas.patterns.copy()
    )
    return {
        "midas": midas,
        "random": random_maintainer,
        "nomaintain": nomaintain,
    }


def _result_of(midas: Midas):
    """Re-wrap a Midas instance's state as a CatapultResult-like view."""
    from ..catapult.pipeline import CatapultResult
    from ..utils.timing import Stopwatch

    return CatapultResult(
        patterns=midas.patterns,
        clusters=midas.clusters,
        csgs=midas.csgs,
        fct_set=midas.fct_set,
        feature_space=midas.clusters.feature_space,
        sampler=midas.sampler,
        oracle=midas.oracle,
        index_pair=midas.index_pair,
        stopwatch=Stopwatch(),
    )
