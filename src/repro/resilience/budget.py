"""Cooperative deadlines and work budgets.

MIDAS promises bounded-latency maintenance, but its hot paths (VF2
search, exact GED A*, FCT mining, the multi-scan swap) are exponential
in the worst case.  A :class:`Budget` makes them interruptible without
threads or signals: long-running loops call :meth:`Budget.check` (or
:meth:`Budget.spend`) every few hundred states, and the budget raises
:class:`~repro.exceptions.DeadlineExceeded` /
:class:`~repro.exceptions.BudgetExhausted` once the wall-clock deadline
passes or the state allowance runs out.  Callers choose the reaction:
the degradation policies in :mod:`repro.resilience.degrade` fall back to
cheaper approximations, anytime loops return partial results, and
``Midas.apply_update`` rolls the round back.

Budgets propagate *ambiently* through a :mod:`contextvars` variable so
hot paths need no signature changes: install one with
:func:`use_budget` and the instrumented loops below it pick it up via
:func:`current_budget`.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar

from ..exceptions import BudgetExhausted, DeadlineExceeded
from ..obs import get_registry

#: Recommended stride for hot loops: check the budget every this many
#: states so the cost stays one integer test per iteration.
CHECK_STRIDE = 256

_current: ContextVar["Budget | None"] = ContextVar(
    "repro_resilience_budget", default=None
)


class Budget:
    """A wall-clock deadline plus a state/expansion allowance.

    Parameters
    ----------
    deadline_seconds:
        Wall-clock allowance from construction time; ``None`` = no
        deadline.
    max_states:
        Total number of states/expansions that may be spent through
        :meth:`spend`; ``None`` = unlimited.
    clock:
        Injectable monotonic clock (tests use a fake).
    """

    __slots__ = ("_clock", "started", "_deadline", "max_states", "states", "_forced")

    def __init__(
        self,
        deadline_seconds: float | None = None,
        max_states: int | None = None,
        clock=time.monotonic,
    ) -> None:
        if deadline_seconds is not None and deadline_seconds < 0:
            raise ValueError("deadline_seconds must be non-negative")
        if max_states is not None and max_states < 0:
            raise ValueError("max_states must be non-negative")
        self._clock = clock
        self.started = clock()
        self._deadline = (
            None if deadline_seconds is None else self.started + deadline_seconds
        )
        self.max_states = max_states
        self.states = 0
        self._forced: str | None = None

    # ------------------------------------------------------------------
    @classmethod
    def from_deadline_ms(
        cls, milliseconds: float, max_states: int | None = None
    ) -> "Budget":
        return cls(deadline_seconds=milliseconds / 1000.0, max_states=max_states)

    # ------------------------------------------------------------------
    @property
    def deadline_seconds(self) -> float | None:
        """Total wall-clock allowance, or None when time-unbounded."""
        if self._deadline is None:
            return None
        return self._deadline - self.started

    def elapsed(self) -> float:
        return self._clock() - self.started

    def remaining_seconds(self) -> float | None:
        """Seconds left before the deadline (None = unbounded)."""
        if self._deadline is None:
            return None
        return max(0.0, self._deadline - self._clock())

    @property
    def expired(self) -> bool:
        """True once any allowance is gone (no exception raised)."""
        if self._forced is not None:
            return True
        if self.max_states is not None and self.states >= self.max_states:
            return True
        return self._deadline is not None and self._clock() >= self._deadline

    # ------------------------------------------------------------------
    def spend(self, states: int = 1, site: str = "") -> None:
        """Charge *states* units of work, then :meth:`check`."""
        self.states += states
        self.check(site)

    def check(self, site: str = "") -> None:
        """Raise if the budget is gone; otherwise a cheap no-op."""
        if self._forced is not None:
            get_registry().counter("resilience.budget_exhausted").add(1)
            raise BudgetExhausted(
                f"budget force-exhausted ({self._forced})", site=site
            )
        if self.max_states is not None and self.states >= self.max_states:
            get_registry().counter("resilience.budget_exhausted").add(1)
            raise BudgetExhausted(
                f"state budget of {self.max_states} spent", site=site
            )
        if self._deadline is not None and self._clock() >= self._deadline:
            get_registry().counter("resilience.deadline_hits").add(1)
            raise DeadlineExceeded(
                f"deadline of {self.deadline_seconds:.3f}s passed", site=site
            )

    def exhaust(self, reason: str = "forced") -> None:
        """Force every subsequent check to raise (fault injection)."""
        self._forced = reason

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [f"states={self.states}"]
        if self.max_states is not None:
            parts.append(f"max_states={self.max_states}")
        if self._deadline is not None:
            parts.append(f"remaining={self.remaining_seconds():.3f}s")
        return f"<Budget {' '.join(parts)}>"


class Deadline(Budget):
    """A pure wall-clock budget (the ``bench --all`` per-figure guard)."""

    def __init__(self, seconds: float, clock=time.monotonic) -> None:
        super().__init__(deadline_seconds=seconds, clock=clock)

    @classmethod
    def from_ms(cls, milliseconds: float) -> "Deadline":
        return cls(milliseconds / 1000.0)


# ----------------------------------------------------------------------
# ambient propagation
# ----------------------------------------------------------------------
def current_budget() -> Budget | None:
    """The ambient budget installed by the nearest :func:`use_budget`."""
    return _current.get()


@contextmanager
def use_budget(budget: Budget | None):
    """Install *budget* as the ambient budget for the dynamic extent.

    ``use_budget(None)`` clears any outer budget, letting a scope opt
    out of an enclosing deadline.
    """
    token = _current.set(budget)
    try:
        yield budget
    finally:
        _current.reset(token)


def budget_check(site: str = "") -> None:
    """Check the ambient budget, if any (module-level convenience)."""
    budget = _current.get()
    if budget is not None:
        budget.check(site)
