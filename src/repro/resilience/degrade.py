"""Graceful degradation policies for the expensive kernels.

When a budget expires mid-computation the caller usually does not want
an exception — it wants a *cheaper answer*.  This module encodes the
fallback ladders:

* **GED**: ``exact`` → ``beam`` → ``bipartite`` → ``tight_lower``.
  Each rung is cheaper and looser than the one above; the final rungs
  (the closed-form lower bounds) are tick-free and always complete, so
  :func:`resilient_ged` always returns a value.
* **Embedding counts**: full VF2 enumeration → capped/partial count
  (:func:`resilient_count` keeps the embeddings found so far when the
  budget runs out).

Every result carries the *fidelity* actually achieved next to the value,
and any step down the ladder increments the ``resilience.degradations``
counter so operators can see how often answers were approximate.

Degradation can be disabled globally (:func:`set_degradation`, the CLI's
``--degrade off``) in which case the budget exception propagates to the
caller instead — useful when a hard failure is preferable to a silently
looser answer.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import ResilienceError
from ..graph.labeled_graph import LabeledGraph
from ..obs import get_registry
from .budget import Budget, use_budget

#: Fallback order per requested GED method.  The first entry is the
#: requested method itself; later entries are progressively cheaper.
DEGRADATION_LADDER: dict[str, tuple[str, ...]] = {
    "exact": ("exact", "beam", "bipartite", "tight_lower"),
    "beam": ("beam", "bipartite", "tight_lower"),
    "bipartite": ("bipartite", "tight_lower"),
    "tight_lower": ("tight_lower",),
    "lower": ("lower",),
}

_degradation_enabled = True


def set_degradation(enabled: bool) -> None:
    """Globally enable/disable fallback (the CLI's ``--degrade`` flag)."""
    global _degradation_enabled
    _degradation_enabled = enabled


def degradation_enabled() -> bool:
    return _degradation_enabled


@dataclass(frozen=True)
class GedResult:
    """A GED value plus the fidelity that produced it."""

    value: int
    fidelity: str
    requested: str

    @property
    def degraded(self) -> bool:
        return self.fidelity != self.requested

    @property
    def is_lower_bound(self) -> bool:
        """True when the value may under-estimate the true distance."""
        return self.fidelity in ("tight_lower", "lower")


@dataclass(frozen=True)
class CountResult:
    """An embedding count plus whether it was truncated."""

    value: int
    fidelity: str  # "full" or "capped"

    @property
    def degraded(self) -> bool:
        return self.fidelity != "full"


def resilient_ged(
    first: LabeledGraph,
    second: LabeledGraph,
    method: str = "tight_lower",
    budget: Budget | None = None,
) -> GedResult:
    """GED via *method*, stepping down the ladder under budget pressure.

    Uses the explicit *budget* if given, else the ambient one.  With
    degradation disabled the first :class:`ResilienceError` propagates.
    """
    from ..cache.stores import caching_enabled, get_caches
    from ..ged import ged  # lazy: repro.ged imports this package

    try:
        ladder = DEGRADATION_LADDER[method]
    except KeyError:
        raise ValueError(
            f"unknown GED method {method!r}; "
            f"choose from {sorted(DEGRADATION_LADDER)}"
        ) from None
    caches = get_caches() if caching_enabled() else None
    if caches is not None:
        cached = caches.ged.get(first, second, method)
        # Only a full-fidelity entry is served, so a cache hit is
        # byte-identical to recomputing without the cache; degraded
        # entries are stored (for fidelity-upgrade bookkeeping) but a
        # later call with budget headroom recomputes past them.
        if cached is not None and cached[1] == method:
            return GedResult(value=cached[0], fidelity=method, requested=method)
    registry = get_registry()
    last_error: ResilienceError | None = None
    for rung in ladder:
        try:
            if budget is not None:
                with use_budget(budget):
                    value = ged(first, second, method=rung)
            else:
                value = ged(first, second, method=rung)
        except ResilienceError as exc:
            if not _degradation_enabled:
                raise
            last_error = exc
            continue
        if rung != method:
            registry.counter("resilience.degradations").add(1)
        if caches is not None:
            caches.ged.put(first, second, method, value, fidelity=rung)
        return GedResult(value=value, fidelity=rung, requested=method)
    # Unreachable in practice: the lower-bound rungs never tick a
    # budget.  Kept for safety if the ladder table is edited.
    raise last_error if last_error else RuntimeError("empty ladder")


def resilient_count(
    pattern: LabeledGraph,
    host: LabeledGraph,
    limit: int | None = None,
    budget: Budget | None = None,
) -> CountResult:
    """Count VF2 embeddings, keeping the partial count under pressure.

    A full enumeration (possibly bounded by *limit*) has fidelity
    ``"full"``; if the budget expires mid-search the embeddings found so
    far are returned with fidelity ``"capped"``.
    """
    from ..cache.stores import caching_enabled, get_caches
    from ..isomorphism.vf2 import VF2Matcher  # lazy: avoid import cycle

    caches = get_caches() if caching_enabled() else None
    if caches is not None:
        cached = caches.embeddings.get_count(pattern, host, limit)
        # Serve full-fidelity counts only: a capped count depends on
        # where the budget happened to expire, so it is recomputed.
        if cached is not None and cached[1] == "full":
            return CountResult(value=cached[0], fidelity="full")
    matcher = VF2Matcher(pattern, host)
    count = 0
    try:
        if budget is not None:
            with use_budget(budget):
                for _ in matcher.matches():
                    count += 1
                    if limit is not None and count >= limit:
                        break
        else:
            for _ in matcher.matches():
                count += 1
                if limit is not None and count >= limit:
                    break
    except ResilienceError:
        if not _degradation_enabled:
            raise
        get_registry().counter("resilience.degradations").add(1)
        if caches is not None:
            caches.embeddings.put_count(
                pattern, host, limit, count, fidelity="capped"
            )
        return CountResult(value=count, fidelity="capped")
    if caches is not None:
        caches.embeddings.put_count(pattern, host, limit, count, fidelity="full")
    return CountResult(value=count, fidelity="full")


def anytime_degradation(site: str) -> None:
    """Record that an anytime loop returned a partial result at *site*.

    Anytime loops (tree mining, greedy selection, swap scans) degrade in
    place — they keep what they have instead of re-running a cheaper
    algorithm — but the event is counted the same way.
    """
    _ = site  # the site currently only documents the call point
    get_registry().counter("resilience.degradations").add(1)


def degradation_count() -> int:
    """Current value of the ``resilience.degradations`` counter."""
    return get_registry().counter("resilience.degradations").value


__all__ = [
    "CountResult",
    "DEGRADATION_LADDER",
    "GedResult",
    "anytime_degradation",
    "degradation_count",
    "degradation_enabled",
    "resilient_count",
    "resilient_ged",
    "set_degradation",
]
