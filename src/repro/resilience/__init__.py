"""Resilience layer: budgets, graceful degradation, fault injection.

The three pillars (see ``docs/ROBUSTNESS.md`` for the operator guide):

* :mod:`repro.resilience.budget` — cooperative wall-clock deadlines and
  state budgets, propagated ambiently through hot paths;
* :mod:`repro.resilience.degrade` — fallback ladders that trade answer
  fidelity for completion when a budget expires (exact GED → beam →
  bipartite → lower bound; full VF2 count → capped count);
* :mod:`repro.resilience.faults` — deterministic fault injection at
  named sites, used by the rollback/degradation test-suite.

Transactional maintenance rounds live in :mod:`repro.midas.maintainer`
(``Midas.apply_update`` snapshots state up front and rolls back on any
mid-round failure), raising/returning the exception subtree defined in
:mod:`repro.exceptions`.

Import note: :mod:`repro.ged` and :mod:`repro.isomorphism.vf2` import
``repro.resilience.budget``/``faults`` for their cooperative checks, so
this ``__init__`` (triggered by those submodule imports) must not import
them back at module level — :mod:`repro.resilience.degrade` defers its
``repro.ged`` import into the function bodies.
"""

from ..exceptions import (
    BudgetExhausted,
    DeadlineExceeded,
    ResilienceError,
    RolledBack,
)
from .budget import (
    CHECK_STRIDE,
    Budget,
    Deadline,
    budget_check,
    current_budget,
    use_budget,
)
from .degrade import (
    DEGRADATION_LADDER,
    CountResult,
    GedResult,
    anytime_degradation,
    degradation_count,
    degradation_enabled,
    resilient_count,
    resilient_ged,
    set_degradation,
)
from .faults import (
    CRASH_ENV_VAR,
    CRASH_EXIT_STATUS,
    KERNEL_SITES,
    MAINTENANCE_SITES,
    SERVE_SITES,
    Fault,
    FaultInjected,
    arm_crash,
    arm_crash_from_env,
    disarm_crashes,
    faults_active,
    inject_faults,
    trip,
)

__all__ = [
    "Budget",
    "BudgetExhausted",
    "CHECK_STRIDE",
    "CRASH_ENV_VAR",
    "CRASH_EXIT_STATUS",
    "CountResult",
    "DEGRADATION_LADDER",
    "Deadline",
    "DeadlineExceeded",
    "Fault",
    "FaultInjected",
    "GedResult",
    "KERNEL_SITES",
    "MAINTENANCE_SITES",
    "SERVE_SITES",
    "ResilienceError",
    "RolledBack",
    "anytime_degradation",
    "arm_crash",
    "arm_crash_from_env",
    "disarm_crashes",
    "budget_check",
    "current_budget",
    "degradation_count",
    "degradation_enabled",
    "faults_active",
    "inject_faults",
    "resilient_count",
    "resilient_ged",
    "set_degradation",
    "trip",
    "use_budget",
]
