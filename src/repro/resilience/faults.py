"""Deterministic fault injection at named sites.

Production code marks interesting failure points with a one-line
``trip("site.name")`` call.  Normally that is a no-op costing one global
load and an ``is None`` test.  Tests activate a plan with
:func:`inject_faults`::

    plan = {"midas.swap": Fault(kind="error")}
    with inject_faults(plan, seed=7):
        midas.apply_update(update)   # raises FaultInjected at the site

Three fault kinds cover the failure modes the resilience layer must
survive:

``error``
    Raise an exception (default :class:`FaultInjected`) — proves the
    transactional rollback in ``Midas.apply_update``.
``latency``
    Sleep ``delay`` seconds — proves deadlines fire where expected.
``exhaust``
    Force the ambient :class:`~repro.resilience.budget.Budget` (or, if
    none is installed, raise :class:`~repro.exceptions.BudgetExhausted`
    directly) — proves the degradation ladders engage.

Plans are deterministic: a fault fires on specific hits of its site
(``after``/``times``) or with a seeded pseudo-random probability, so a
failing schedule reproduces exactly from the seed.
"""

from __future__ import annotations

import os
import random
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from ..exceptions import BudgetExhausted, ReproError
from ..obs import get_registry
from .budget import current_budget

#: The named injection sites inside one ``Midas.apply_update`` round, in
#: execution order.  Tests iterate this list to prove a fault at *every*
#: site rolls the round back to a byte-identical pre-round state.
MAINTENANCE_SITES = (
    "midas.detect",
    "midas.clusters",
    "midas.fct",
    "midas.csg",
    "midas.index",
    "midas.sample",
    "midas.candidates",
    "midas.swap",
    "midas.index_sync",
)

#: Hot-path sites (inside the algorithmic kernels, not the round driver).
KERNEL_SITES = (
    "ged.exact",
    "ged.beam",
    "ged.bipartite",
    "vf2.search",
    "fct.mine",
)

#: Crash points on the serving/journal path, in the order one update
#: flows through them.  ``python -m repro crashtest`` kills a live serve
#: process at each of these and asserts recovery restores an
#: oracle-identical head with zero lost committed rounds (see
#: docs/ROBUSTNESS.md, "Crash injection").
SERVE_SITES = (
    # admission: before / after the submitted record is durable
    "serve.submit.pre_journal",
    "serve.submit.post_journal",
    # one round: dequeue -> apply -> journal outcome -> publish -> ack
    "serve.round.pre_apply",
    "serve.round.post_apply",
    "serve.round.post_journal",
    "serve.publish.post",
    # journal internals
    "journal.append",
    "journal.rotate",
    "journal.checkpoint",
)


class FaultInjected(ReproError):
    """The default exception raised by an ``error``-kind fault."""

    def __init__(self, site: str):
        super().__init__(f"fault injected at {site}")
        self.site = site


@dataclass
class Fault:
    """One fault to inject at a site.

    Attributes
    ----------
    kind:
        ``"error"``, ``"latency"`` or ``"exhaust"``.
    exc:
        Exception *instance or class* to raise for ``error`` faults
        (default: :class:`FaultInjected` carrying the site name).
    delay:
        Sleep duration in seconds for ``latency`` faults.
    after:
        Skip this many hits of the site before arming (0 = fire on the
        first hit).
    times:
        Fire at most this many times (``None`` = every armed hit).
    probability:
        Fire each armed hit with this probability, drawn from the
        plan's seeded generator (1.0 = always).
    """

    kind: str = "error"
    exc: BaseException | type[BaseException] | None = None
    delay: float = 0.0
    after: int = 0
    times: int | None = 1
    probability: float = 1.0
    # mutable firing state, reset each time a plan is (re)activated
    hits: int = field(default=0, compare=False)
    fired: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if self.kind not in ("error", "latency", "exhaust"):
            raise ValueError(f"unknown fault kind {self.kind!r}")


class _ActivePlan:
    __slots__ = ("faults", "rng")

    def __init__(self, faults: dict[str, Fault], seed: int):
        self.faults = faults
        self.rng = random.Random(seed)


# The single (module-level) active plan; ``trip`` is a no-op while None.
_active: _ActivePlan | None = None

# Armed hard-crash sites: site -> remaining hits to skip before dying.
# Kept separate from the plan machinery so a child process can arm one
# crash for its whole lifetime (via REPRO_CRASH_SITE) without colliding
# with the no-nesting rule of :func:`inject_faults`.
_crash_sites: dict[str, int] = {}

#: Exit status a crash fault dies with (mirrors SIGKILL's shell status,
#: so harnesses can tell an injected crash from an ordinary failure).
CRASH_EXIT_STATUS = 137

#: Environment variable the crashtest harness sets in the child serve
#: process: ``site`` or ``site:skip`` (skip = hits to survive first).
CRASH_ENV_VAR = "REPRO_CRASH_SITE"


def arm_crash(site: str, after: int = 0) -> None:
    """Arm a hard crash (``os._exit``) at the *after+1*-th hit of *site*."""
    _crash_sites[site] = after


def disarm_crashes() -> None:
    """Remove every armed crash site (test teardown)."""
    _crash_sites.clear()


def arm_crash_from_env(environ: dict | None = None) -> str | None:
    """Arm a crash from ``REPRO_CRASH_SITE``; returns the armed site.

    The value is ``site`` or ``site:skip``.  Called by the serve CLI so
    the crashtest harness can plant a crash in a real child process with
    nothing but an environment variable.
    """
    value = (environ or os.environ).get(CRASH_ENV_VAR, "").strip()
    if not value:
        return None
    site, _, skip = value.partition(":")
    arm_crash(site, int(skip) if skip else 0)
    return site


def _maybe_crash(site: str) -> None:
    remaining = _crash_sites.get(site)
    if remaining is None:
        return
    if remaining > 0:
        _crash_sites[site] = remaining - 1
        return
    # A real crash: no cleanup, no flushing beyond what already fsynced,
    # no exception a try/finally could intercept.
    os._exit(CRASH_EXIT_STATUS)


def trip(site: str) -> None:
    """Fault-injection checkpoint; no-op unless a plan is active."""
    if _crash_sites:
        _maybe_crash(site)
    plan = _active
    if plan is None:
        return
    fault = plan.faults.get(site)
    if fault is None:
        return
    fault.hits += 1
    if fault.hits <= fault.after:
        return
    if fault.times is not None and fault.fired >= fault.times:
        return
    if fault.probability < 1.0 and plan.rng.random() >= fault.probability:
        return
    fault.fired += 1
    get_registry().counter("resilience.faults_injected").add(1)
    if fault.kind == "latency":
        time.sleep(fault.delay)
        return
    if fault.kind == "exhaust":
        budget = current_budget()
        if budget is not None:
            budget.exhaust(f"fault at {site}")
            budget.check(site)
        raise BudgetExhausted("budget exhausted by injected fault", site=site)
    # kind == "error"
    exc = fault.exc
    if exc is None:
        raise FaultInjected(site)
    if isinstance(exc, type):
        raise exc(f"fault injected at {site}")
    raise exc


@contextmanager
def inject_faults(plan: dict[str, Fault], seed: int = 0):
    """Activate *plan* (site name → :class:`Fault`) for the block.

    Firing state (``hits``/``fired``) is reset on entry so a plan object
    can be reused across rounds.  Plans do not nest: activating a new
    one inside an active block raises to keep schedules deterministic.
    """
    global _active
    if _active is not None:
        raise RuntimeError("fault-injection plans do not nest")
    for fault in plan.values():
        fault.hits = 0
        fault.fired = 0
    _active = _ActivePlan(dict(plan), seed)
    try:
        yield _active
    finally:
        _active = None


def faults_active() -> bool:
    """True while an :func:`inject_faults` block is active."""
    return _active is not None


__all__ = [
    "CRASH_ENV_VAR",
    "CRASH_EXIT_STATUS",
    "Fault",
    "FaultInjected",
    "KERNEL_SITES",
    "MAINTENANCE_SITES",
    "SERVE_SITES",
    "arm_crash",
    "arm_crash_from_env",
    "disarm_crashes",
    "faults_active",
    "inject_faults",
    "trip",
]
