"""Crash-injection harness: kill a live serve process, prove recovery.

``python -m repro crashtest`` is the executable form of the durability
contract in docs/ROBUSTNESS.md.  For every crash site in
:data:`~repro.resilience.faults.SERVE_SITES` it

1. seeds a journal directory once (bootstrap → checkpoint 0), then
   copies it so every site starts from identical durable state;
2. spawns a **real child serve process** (``python -m repro serve
   --journal DIR``) with ``REPRO_CRASH_SITE=<site>`` in its
   environment — the child arms :func:`~repro.resilience.faults.
   arm_crash` and dies with ``os._exit(137)`` the moment execution
   reaches the site;
3. drives updates over actual HTTP until the child drops dead
   mid-write;
4. runs :func:`~repro.journal.recovery.recover` over the survivor
   directory and asserts the contract:

   * recovery succeeds — torn tails truncated, every replayed commit
     matching its journaled digest, the rebuilt head clean against a
     fresh coverage oracle;
   * **zero lost committed rounds**: any snapshot version a client
     observed before the crash is ≤ the recovered head version;
   * **zero silently dropped accepted updates**: every update the
     client got a 202 for is either resolved in the recovered statuses
     or re-queued as pending.

The per-site recovery times land in ``BENCH_recovery.json`` (the
scheduled-CI artefact).  ``--smoke`` runs the three cheapest sites as a
PR gate.
"""

from __future__ import annotations

import asyncio
import json
import os
import shutil
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from ..graph.io import graph_to_dict
from ..journal import recover
from ..resilience.faults import CRASH_ENV_VAR, CRASH_EXIT_STATUS, SERVE_SITES
from .bench import RETRYABLE_ERRORS, HttpClient

#: The PR-gate subset: one site per layer (admission / round / publish),
#: enough to catch a broken write-ahead ordering without the full matrix.
SMOKE_SITES = (
    "serve.submit.post_journal",
    "serve.round.post_journal",
    "serve.publish.post",
)

#: Child-process knobs: tiny segments and frequent checkpoints so the
#: rotate / checkpoint sites actually trip within a handful of updates.
CHILD_SEGMENT_BYTES = 2048
CHILD_CHECKPOINT_EVERY = 2

#: Updates to push at the child before concluding a site never trips.
MAX_UPDATES_PER_SITE = 12

#: Hard per-site wall-clock guard (seed recovery + a dozen rounds).
SITE_DEADLINE_SECONDS = 120.0


def _seed_journal(
    directory: Path, *, seed: int, store: str | None = None
) -> None:
    """Bootstrap once and cut checkpoint 0 into *directory*.

    With a *store* spec the bootstrap dataset is ingested into that
    backend first, so the checkpointed maintainer — and every round the
    recovered child replays — runs against it (docs/STORAGE.md).
    """
    import asyncio as _asyncio

    from .. import api
    from ..datasets import aids_like
    from ..midas.config import MidasConfig
    from ..patterns.budget import PatternBudget
    from .service import PatternService

    database = aids_like(20, seed=seed)
    if store:
        from ..store import open_store

        directory.mkdir(parents=True, exist_ok=True)
        backing = open_store(store)
        backing.ingest(dict(database.items()))
        database = backing
    midas = api.bootstrap(
        database,
        config=MidasConfig(
            budget=PatternBudget(3, 6, 5),
            num_clusters=3,
            sample_cap=40,
            seed=seed,
        ),
    )
    service = PatternService(
        midas,
        journal_dir=directory,
        segment_max_bytes=CHILD_SEGMENT_BYTES,
    )
    _asyncio.run(service.close())


def _spawn_child(journal_dir: Path, site: str) -> subprocess.Popen:
    env = dict(os.environ)
    env[CRASH_ENV_VAR] = site
    src_root = str(Path(__file__).resolve().parent.parent.parent)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, (src_root, env.get("PYTHONPATH")))
    )
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--journal",
            str(journal_dir),
            "--segment-bytes",
            str(CHILD_SEGMENT_BYTES),
            "--checkpoint-every",
            str(CHILD_CHECKPOINT_EVERY),
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
    )


def _wait_for_address(child: subprocess.Popen, deadline: float) -> tuple:
    """Parse ``serving on http://host:port`` from the child's stdout."""
    while time.monotonic() < deadline:
        line = child.stdout.readline()
        if not line:
            raise RuntimeError(
                f"child exited (code {child.poll()}) before binding"
            )
        if "serving on http://" in line:
            address = line.split("http://", 1)[1].split()[0]
            host, _, port = address.partition(":")
            return host, int(port)
    raise TimeoutError("child never reported its address")


async def _drive_until_crash(
    host: str, port: int, child: subprocess.Popen, *, seed: int
) -> tuple[list[int], int]:
    """Submit updates until the child dies; return (acked ids, max version).

    Uses no-wait submits so the 202 acknowledgement maps one-to-one to
    "the submitted record is durable", and observes committed progress
    through ``GET /patterns`` — any version a reader saw must survive.
    """
    from ..datasets.molecules import MoleculeGenerator

    generator = MoleculeGenerator(seed=seed)
    acked: list[int] = []
    max_observed_version = 0
    client = await HttpClient.connect(host, port, timeout=30.0)
    try:
        for _ in range(MAX_UPDATES_PER_SITE):
            payload = {
                "insertions": [graph_to_dict(generator.generate())],
                "deletions": [],
            }
            try:
                status, body = await client.request(
                    "POST", "/updates", payload=payload
                )
                if status == 202:
                    acked.append(body["update_id"])
                status, body = await client.request("GET", "/patterns")
                if status == 200:
                    max_observed_version = max(
                        max_observed_version, body["version"]
                    )
            except RETRYABLE_ERRORS:
                if child.poll() is not None:
                    break
                await asyncio.sleep(0.2)
                continue
            # Give the background round a moment so round-side sites
            # trip while we are still watching.
            await asyncio.sleep(0.1)
            if child.poll() is not None:
                break
    finally:
        await client.close()
    return acked, max_observed_version


def _verify_site(
    journal_dir: Path,
    acked: list[int],
    max_observed_version: int,
) -> tuple[dict, list[str]]:
    """Recover the survivor directory and check the contract."""
    failures: list[str] = []
    started = time.perf_counter()
    try:
        recovered = recover(journal_dir)
    except Exception as exc:  # noqa: BLE001 - a recovery failure IS the
        # finding this harness exists to surface.
        return (
            {"recovery_seconds": time.perf_counter() - started},
            [f"recovery failed: {type(exc).__name__}: {exc}"],
        )
    recovery_seconds = time.perf_counter() - started
    if recovered.head_version < max_observed_version:
        failures.append(
            f"lost committed round: a client observed version "
            f"{max_observed_version} but recovery only reached "
            f"{recovered.head_version}"
        )
    pending_ids = {update_id for update_id, _ in recovered.pending}
    for update_id in acked:
        if (
            update_id not in recovered.statuses
            and update_id not in pending_ids
        ):
            failures.append(
                f"dropped accepted update {update_id}: acknowledged with "
                f"202 but neither resolved nor pending after recovery"
            )
    detail = {
        "recovery_seconds": recovery_seconds,
        "head_version": recovered.head_version,
        "max_observed_version": max_observed_version,
        "acked_updates": len(acked),
        "resolved_after_recovery": sum(
            1 for update_id in acked if update_id in recovered.statuses
        ),
        "pending_after_recovery": len(recovered.pending),
        "replayed_commits": recovered.replayed_commits,
        "records_scanned": recovered.records_scanned,
    }
    recovered.journal.close()
    return detail, failures


def _run_one_site(
    workdir: Path,
    seed_dir: Path,
    site: str,
    seed: int,
    label: str | None = None,
) -> dict:
    site_dir = workdir / (label or site).replace(".", "_").replace("[", "_").replace("]", "")
    shutil.copytree(seed_dir, site_dir)
    deadline = time.monotonic() + SITE_DEADLINE_SECONDS
    child = _spawn_child(site_dir, site)
    result: dict = {"site": label or site}
    try:
        host, port = _wait_for_address(child, deadline)
        acked, max_version = asyncio.run(
            _drive_until_crash(host, port, child, seed=seed)
        )
        try:
            exit_code = child.wait(
                timeout=max(1.0, deadline - time.monotonic())
            )
        except subprocess.TimeoutExpired:
            child.kill()
            child.wait()
            result["failures"] = [
                f"site never tripped within {MAX_UPDATES_PER_SITE} updates"
            ]
            return result
        result["exit_code"] = exit_code
        failures: list[str] = []
        if exit_code != CRASH_EXIT_STATUS:
            failures.append(
                f"child exited {exit_code}, expected injected-crash "
                f"status {CRASH_EXIT_STATUS}"
            )
        detail, verify_failures = _verify_site(site_dir, acked, max_version)
        result.update(detail)
        result["failures"] = failures + verify_failures
        return result
    except Exception as exc:  # noqa: BLE001 - harness-level failure for
        # this site; report it and keep the matrix going.
        result["failures"] = [f"harness error: {type(exc).__name__}: {exc}"]
        return result
    finally:
        if child.poll() is None:
            child.kill()
            child.wait()
        if child.stdout is not None:
            child.stdout.close()


def run_crashtest(
    sites: tuple[str, ...] | None = None,
    *,
    smoke: bool = False,
    out: str | None = "BENCH_recovery.json",
    seed: int = 0,
    store: str | None = None,
) -> int:
    """Run the crash matrix; returns 0 only if every site recovers clean.

    *store* is a graph-store spec the seeded service runs against
    (``None`` = in-memory).  The default full matrix additionally runs
    one SQLite-backed site so the out-of-core round path is crash-tested
    without doubling the matrix.
    """
    explicit_sites = sites is not None
    if sites is None:
        sites = SMOKE_SITES if smoke else SERVE_SITES
    unknown = [site for site in sites if site not in SERVE_SITES]
    if unknown:
        print(f"unknown crash sites: {', '.join(unknown)}", file=sys.stderr)
        return 2
    workdir = Path(tempfile.mkdtemp(prefix="repro-crashtest-"))
    seed_dir = workdir / "seed"
    print(f"seeding journal state under {workdir} ...", flush=True)
    started = time.perf_counter()
    _seed_journal(seed_dir, seed=seed, store=store)
    print(
        f"seed ready in {time.perf_counter() - started:.1f}s; "
        f"running {len(sites)} crash sites"
        + (f" (store {store})" if store else ""),
        flush=True,
    )
    # (label, site, seed_dir) plan; the full default matrix appends one
    # SQLite-backed run of the first smoke site from its own seed.
    plan = [(site, site, seed_dir) for site in sites]
    if store is None and not smoke and not explicit_sites:
        sqlite_seed = workdir / "seed-sqlite"
        sqlite_spec = f"sqlite:{sqlite_seed / 'store.db'}"
        _seed_journal(sqlite_seed, seed=seed, store=sqlite_spec)
        plan.append(
            (f"{SMOKE_SITES[0]}[sqlite]", SMOKE_SITES[0], sqlite_seed)
        )

    results = []
    for label, site, site_seed_dir in plan:
        result = _run_one_site(workdir, site_seed_dir, site, seed, label)
        results.append(result)
        verdict = "ok" if not result.get("failures") else "FAIL"
        recovery = result.get("recovery_seconds")
        recovery_text = f"{recovery:.2f}s" if recovery is not None else "-"
        print(
            f"  {label:<28} {verdict:<5} "
            f"exit={result.get('exit_code', '?'):<4} "
            f"recovery={recovery_text:<7} "
            f"replayed={result.get('replayed_commits', '-')} "
            f"pending={result.get('pending_after_recovery', '-')}",
            flush=True,
        )
        for failure in result.get("failures", []):
            print(f"      {failure}", flush=True)

    failed = [r for r in results if r.get("failures")]
    figure = {
        "figure": "recovery",
        "generated_by": "python -m repro crashtest"
        + (" --smoke" if smoke else ""),
        "config": {
            "sites": [label for label, _, _ in plan],
            "store": store or "memory",
            "seed": seed,
            "segment_max_bytes": CHILD_SEGMENT_BYTES,
            "checkpoint_every": CHILD_CHECKPOINT_EVERY,
            "max_updates_per_site": MAX_UPDATES_PER_SITE,
        },
        "sites": results,
        "summary": {
            "sites_run": len(results),
            "sites_clean": len(results) - len(failed),
            "recovery_seconds_max": max(
                (
                    r["recovery_seconds"]
                    for r in results
                    if "recovery_seconds" in r
                ),
                default=0.0,
            ),
        },
    }
    if out:
        with open(out, "w", encoding="utf-8") as handle:
            json.dump(figure, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {out}", flush=True)
    shutil.rmtree(workdir, ignore_errors=True)
    if failed:
        print(
            f"crashtest: {len(failed)}/{len(results)} sites FAILED",
            file=sys.stderr,
        )
        return 1
    print(f"crashtest: all {len(results)} sites recovered clean")
    return 0


__all__ = ["SMOKE_SITES", "run_crashtest"]
