"""The pattern-serving service (see ``docs/SERVING.md``).

A visual query interface at scale is a *service*: many users fetching
the current canned-pattern set and issuing coverage queries while MIDAS
maintains the panel in the background.  This package provides that
serving path, stdlib-only:

* :mod:`repro.serve.snapshot` — immutable, versioned pattern-set
  snapshots published copy-on-write at each committed maintenance
  round; readers pin a version for the duration of a request;
* :mod:`repro.serve.service` — :class:`PatternService`, the single
  writer: a background maintenance loop draining submitted
  :class:`~repro.graph.database.BatchUpdate`\\ s through
  ``Midas.apply_update`` in a worker thread;
* :mod:`repro.serve.http` — the asyncio HTTP/JSON front-end
  (``python -m repro serve``);
* :mod:`repro.serve.bench` — the smoke gate and the ``serve-bench``
  load generator (``BENCH_serve.json``);
* :mod:`repro.serve.crashtest` — the crash-injection harness
  (``python -m repro crashtest``) that kills a live journaled serve
  process at every :data:`~repro.resilience.faults.SERVE_SITES` crash
  point and asserts oracle-clean recovery (``BENCH_recovery.json``).

Durability (write-ahead journaling, checkpoints, recovery) lives in
:mod:`repro.journal`; :class:`PatternService` wires it in when built
with ``journal_dir=``.
"""

from .http import PatternServer, ROUTES, endpoints
from .service import (
    DEFAULT_QUEUE_LIMIT,
    HEALTH_STATES,
    PatternService,
    UpdateStatus,
)
from .snapshot import (
    PatternSnapshot,
    SnapshotLease,
    SnapshotPattern,
    SnapshotStore,
    build_snapshot,
)

__all__ = [
    "DEFAULT_QUEUE_LIMIT",
    "HEALTH_STATES",
    "PatternServer",
    "PatternService",
    "PatternSnapshot",
    "ROUTES",
    "SnapshotLease",
    "SnapshotPattern",
    "SnapshotStore",
    "UpdateStatus",
    "build_snapshot",
    "endpoints",
]
