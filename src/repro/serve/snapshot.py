"""Copy-on-write pattern-set snapshots with version-pinned reads.

The serving layer never hands a reader live maintainer state: every
committed maintenance round publishes one immutable
:class:`PatternSnapshot` into the :class:`SnapshotStore`, and a reader
*pins* whatever snapshot is current when its request starts
(:meth:`SnapshotStore.pin`).  Because snapshots are frozen values —
cover sets are ``frozenset``s computed at publish time, pattern graphs
are the maintainer's own immutable :class:`~repro.patterns.pattern.
CannedPattern` graphs, never mutated in place — a pinned reader can
take arbitrarily long without ever observing a half-committed round,
and a rollback (PR 2) simply never publishes.

Version lag is observable: releasing a pin compares the pinned version
against the store head and reports through the ``serve.staleness``
gauge, the ``serve.stale_reads`` counter and the ``serve.staleness_ms``
/ ``serve.staleness_versions`` histograms (see docs/SERVING.md and the
catalogue in docs/OBSERVABILITY.md).
"""

from __future__ import annotations

import threading
import time
from collections.abc import Iterable
from dataclasses import dataclass

from ..graph.io import graph_to_dict
from ..graph.labeled_graph import LabeledGraph
from ..obs import get_registry
from ..patterns.metrics import CoverageOracle


@dataclass(frozen=True)
class SnapshotPattern:
    """One canned pattern as frozen at publish time."""

    pattern_id: int
    graph: LabeledGraph
    provenance: str
    #: ``G_scov(p)`` over the maintained sample view at this version.
    cover: frozenset[int]
    #: ``|cover| / |D_s|`` at this version.
    scov: float

    def to_dict(self) -> dict:
        return {
            "id": self.pattern_id,
            "provenance": self.provenance,
            "scov": self.scov,
            "cover_size": len(self.cover),
            "graph": graph_to_dict(self.graph),
        }


@dataclass(frozen=True)
class PatternSnapshot:
    """An immutable, versioned view of the served pattern set."""

    version: int
    #: Wall-clock publish time (``time.time()``), for display only; the
    #: staleness arithmetic uses the store's monotonic clock.
    published_at: float
    database_size: int
    #: Size of the sample view ``D_s`` the cover sets are over.
    sample_size: int
    set_scov: float
    patterns: tuple[SnapshotPattern, ...]

    def pattern_ids(self) -> list[int]:
        return [entry.pattern_id for entry in self.patterns]

    def pattern(self, pattern_id: int) -> SnapshotPattern | None:
        for entry in self.patterns:
            if entry.pattern_id == pattern_id:
                return entry
        return None

    def to_dict(self, *, include_graphs: bool = True) -> dict:
        entries = []
        for entry in self.patterns:
            payload = entry.to_dict()
            if not include_graphs:
                payload.pop("graph")
            entries.append(payload)
        return {
            "version": self.version,
            "published_at": self.published_at,
            "database_size": self.database_size,
            "sample_size": self.sample_size,
            "set_scov": self.set_scov,
            "patterns": entries,
        }


def build_snapshot(
    version: int,
    patterns: Iterable[tuple[int, LabeledGraph, str]],
    oracle: CoverageOracle,
    *,
    database_size: int,
    published_at: float | None = None,
) -> PatternSnapshot:
    """Freeze *patterns* against *oracle* into one publishable value.

    The cover sets and scov values are computed eagerly, so readers of
    the published snapshot never touch the (mutable, maintainer-owned)
    oracle at all — that is what makes the read path isolation-free.
    """
    entries = []
    graphs = []
    for pattern_id, graph, provenance in patterns:
        cover = oracle.cover(graph)
        entries.append(
            SnapshotPattern(
                pattern_id=pattern_id,
                graph=graph,
                provenance=provenance,
                cover=cover,
                scov=oracle.scov(graph),
            )
        )
        graphs.append(graph)
    return PatternSnapshot(
        version=version,
        published_at=time.time() if published_at is None else published_at,
        database_size=database_size,
        sample_size=oracle.universe_size,
        set_scov=oracle.set_scov(graphs),
        patterns=tuple(entries),
    )


class SnapshotLease:
    """A pinned snapshot; release it to report the observed version lag.

    Usable as a context manager.  The lease keeps the snapshot reachable
    for as long as the reader needs it; releasing is purely an
    observability event (the pinned value stays valid forever — it is
    immutable), recording how far behind the store head the read ended.
    """

    __slots__ = ("snapshot", "_store", "_released")

    def __init__(self, snapshot: PatternSnapshot, store: "SnapshotStore"):
        self.snapshot = snapshot
        self._store = store
        self._released = False

    @property
    def version(self) -> int:
        return self.snapshot.version

    def release(self) -> int:
        """Report the version lag observed by this read; returns the lag."""
        if self._released:
            return 0
        self._released = True
        return self._store._release(self.snapshot.version)

    def __enter__(self) -> "SnapshotLease":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


class SnapshotStore:
    """The copy-on-write publication point between maintainer and readers.

    One writer (the maintenance loop) publishes strictly increasing
    versions; any number of readers pin the current head.  The store is
    thread-safe: the maintainer commits from an executor thread while
    the asyncio serving loop pins from the event-loop thread.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._current: PatternSnapshot | None = None
        #: version -> monotonic publish instant, for the staleness window.
        self._published_monotonic: dict[int, float] = {}

    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """The head version (0 before the first publish)."""
        with self._lock:
            return self._current.version if self._current else 0

    def current(self) -> PatternSnapshot:
        with self._lock:
            if self._current is None:
                raise RuntimeError("no snapshot published yet")
            return self._current

    def publish(self, snapshot: PatternSnapshot) -> PatternSnapshot:
        """Atomically replace the head; versions must increase by one.

        The *first* publish accepts any version ≥ 1 so a recovered
        service can re-seat the journal-replayed head at the version it
        had reached before the crash; every later publish must be
        exactly head + 1.
        """
        registry = get_registry()
        with self._lock:
            if self._current is None:
                expected = snapshot.version if snapshot.version >= 1 else 1
            else:
                expected = self._current.version + 1
            if snapshot.version != expected:
                raise ValueError(
                    f"snapshot version {snapshot.version} out of order; "
                    f"expected {expected}"
                )
            self._current = snapshot
            self._published_monotonic[snapshot.version] = time.monotonic()
        registry.counter("serve.snapshots_published").add(1)
        registry.gauge("serve.version").set(snapshot.version)
        return snapshot

    def pin(self) -> SnapshotLease:
        """Pin the current head for the duration of one read."""
        return SnapshotLease(self.current(), self)

    def published_monotonic(self, version: int) -> float | None:
        """Monotonic instant *version* was published (None if unknown)."""
        with self._lock:
            return self._published_monotonic.get(version)

    # ------------------------------------------------------------------
    def _release(self, pinned_version: int) -> int:
        registry = get_registry()
        with self._lock:
            head = self._current.version if self._current else 0
            lag = head - pinned_version
            next_publish = self._published_monotonic.get(pinned_version + 1)
        registry.gauge("serve.staleness").set(lag)
        if lag > 0:
            registry.counter("serve.stale_reads").add(1)
            registry.histogram("serve.staleness_versions").record(lag)
            if next_publish is not None:
                registry.histogram("serve.staleness_ms").record(
                    max(0.0, (time.monotonic() - next_publish) * 1000.0)
                )
        return lag


__all__ = [
    "PatternSnapshot",
    "SnapshotLease",
    "SnapshotPattern",
    "SnapshotStore",
    "build_snapshot",
]
