"""A stdlib-only asyncio HTTP/JSON front-end for the pattern service.

Endpoint reference, response schemas and error codes are documented in
``docs/SERVING.md``; ``tests/test_docs.py`` keeps that document and the
:data:`ROUTES` table below in lock-step, in both directions.

Design constraints:

* **stdlib only** — the transport is a hand-rolled HTTP/1.1 subset over
  ``asyncio.start_server`` (request line + headers + Content-Length
  body; keep-alive honoured) because the container has no web
  framework, and none is needed for six JSON routes;
* **reads never touch the maintainer** — every read handler pins a
  :class:`~repro.serve.snapshot.PatternSnapshot` and answers from it,
  so a background maintenance round can commit mid-request without the
  reader ever observing it (see docs/SERVING.md, "Snapshot isolation");
* **structured errors** — failures return
  ``{"error": {"code": ..., "message": ...}}`` with conventional HTTP
  statuses (400, 404, 405, 413, 429, 500, 503); a 429 carries a
  ``Retry-After`` header with the service's drain-time estimate.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass
from urllib.parse import parse_qs, urlsplit

from ..exceptions import ServiceOverloaded, ServiceUnavailable
from ..graph.database import BatchUpdate
from ..graph.io import FormatError, graph_from_dict
from ..obs import get_registry, metrics_snapshot
from .service import PatternService

#: Largest accepted request body (a batch update of graph JSON).
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Reason phrases for the statuses this server emits.
REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """A structured, client-visible request failure."""

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        headers: dict[str, str] | None = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message
        self.headers = headers or {}

    def payload(self) -> dict:
        return {"error": {"code": self.code, "message": self.message}}


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: dict[str, list[str]]
    headers: dict[str, str]
    body: bytes

    def param(self, name: str) -> str | None:
        values = self.query.get(name)
        return values[0] if values else None

    def int_param(self, name: str) -> int | None:
        raw = self.param(name)
        if raw is None:
            return None
        try:
            return int(raw)
        except ValueError:
            raise HttpError(
                400, "bad_request", f"query parameter {name!r} must be an "
                f"integer, got {raw!r}"
            ) from None

    def flag_param(self, name: str) -> bool:
        return (self.param(name) or "").lower() in ("1", "true", "yes")

    def json_body(self) -> dict:
        try:
            payload = json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(
                400, "bad_json", f"request body is not valid JSON: {exc}"
            ) from None
        if not isinstance(payload, dict):
            raise HttpError(
                400, "bad_json", "request body must be a JSON object"
            )
        return payload


# ----------------------------------------------------------------------
# handlers — one per (method, path); all read paths answer from a pinned
# snapshot only
# ----------------------------------------------------------------------
async def handle_patterns(
    service: PatternService, request: Request
) -> tuple[int, dict]:
    """GET /patterns — the current canned-pattern set, one version."""
    with service.store.pin() as lease:
        include_graphs = not request.flag_param("meta_only")
        return 200, lease.snapshot.to_dict(include_graphs=include_graphs)


def _snapshot_pattern(lease, request: Request):
    pattern_id = request.int_param("pattern")
    if pattern_id is None:
        raise HttpError(
            400, "bad_request", "missing required query parameter 'pattern'"
        )
    entry = lease.snapshot.pattern(pattern_id)
    if entry is None:
        raise HttpError(
            404,
            "unknown_pattern",
            f"no pattern with id {pattern_id} at version "
            f"{lease.snapshot.version}",
        )
    return entry


async def handle_cover(
    service: PatternService, request: Request
) -> tuple[int, dict]:
    """GET /cover?pattern=ID — the pattern's cover set at one version."""
    with service.store.pin() as lease:
        entry = _snapshot_pattern(lease, request)
        return 200, {
            "version": lease.snapshot.version,
            "pattern": entry.pattern_id,
            "cover": sorted(entry.cover),
            "scov": entry.scov,
            "sample_size": lease.snapshot.sample_size,
        }


async def handle_scov(
    service: PatternService, request: Request
) -> tuple[int, dict]:
    """GET /scov[?pattern=ID] — per-pattern or whole-set coverage."""
    with service.store.pin() as lease:
        if request.param("pattern") is None:
            return 200, {
                "version": lease.snapshot.version,
                "set_scov": lease.snapshot.set_scov,
                "patterns": len(lease.snapshot.patterns),
                "sample_size": lease.snapshot.sample_size,
            }
        entry = _snapshot_pattern(lease, request)
        return 200, {
            "version": lease.snapshot.version,
            "pattern": entry.pattern_id,
            "scov": entry.scov,
            "sample_size": lease.snapshot.sample_size,
        }


def _parse_update(payload: dict) -> BatchUpdate:
    insertions = payload.get("insertions", [])
    deletions = payload.get("deletions", [])
    if not isinstance(insertions, list) or not isinstance(deletions, list):
        raise HttpError(
            400, "bad_update", "'insertions' and 'deletions' must be lists"
        )
    graphs = []
    for position, entry in enumerate(insertions):
        try:
            graphs.append(graph_from_dict(entry))
        except (FormatError, TypeError, KeyError, ValueError) as exc:
            raise HttpError(
                400,
                "bad_update",
                f"insertions[{position}] is not a valid graph payload: {exc}",
            ) from None
    ids = []
    for position, entry in enumerate(deletions):
        if isinstance(entry, bool) or not isinstance(entry, int):
            raise HttpError(
                400,
                "bad_update",
                f"deletions[{position}] must be an integer graph id",
            )
        ids.append(entry)
    return BatchUpdate.of(insertions=graphs, deletions=ids)


async def handle_updates(
    service: PatternService, request: Request
) -> tuple[int, dict]:
    """POST /updates — submit a BatchUpdate; ``?wait=1`` for the outcome.

    Overload and availability map onto transport semantics here: a full
    admission queue is a 429 with ``Retry-After`` (back off and resend),
    a draining / dead / breaker-open service is a 503 (this process will
    not take the write; resubmit after recovery).
    """
    update = _parse_update(request.json_body())
    try:
        status = await service.submit(update)
    except ServiceOverloaded as exc:
        raise HttpError(
            429,
            "overloaded",
            str(exc),
            headers={"Retry-After": str(int(round(exc.retry_after)))},
        ) from None
    except ServiceUnavailable as exc:
        raise HttpError(503, "unavailable", str(exc)) from None
    if request.flag_param("wait"):
        status = await service.wait_for(status.update_id)
        return 200, status.to_dict()
    return 202, status.to_dict()


async def handle_healthz(
    service: PatternService, request: Request
) -> tuple[int, dict]:
    """GET /healthz — the health state machine, head version, queue depth.

    ``ok`` and ``degraded`` answer 200 (the process still serves reads
    and takes writes); ``draining`` and ``dead`` answer 503 so load
    balancers stop routing to it.
    """
    payload = service.health()
    with service.store.pin() as lease:
        payload.update(
            {
                "version": lease.snapshot.version,
                "patterns": len(lease.snapshot.patterns),
                "database_size": lease.snapshot.database_size,
            }
        )
    status = 503 if payload["status"] in ("draining", "dead") else 200
    return status, payload


async def handle_metricz(
    service: PatternService, request: Request
) -> tuple[int, dict]:
    """GET /metricz — the full MetricsRegistry snapshot (PR-1 layer)."""
    return 200, metrics_snapshot()


#: The complete routing table; docs/SERVING.md catalogues exactly these.
ROUTES = {
    ("GET", "/patterns"): handle_patterns,
    ("GET", "/cover"): handle_cover,
    ("GET", "/scov"): handle_scov,
    ("POST", "/updates"): handle_updates,
    ("GET", "/healthz"): handle_healthz,
    ("GET", "/metricz"): handle_metricz,
}


def endpoints() -> list[str]:
    """``"METHOD /path"`` strings for every route (the doc-gate surface)."""
    return sorted(f"{method} {path}" for method, path in ROUTES)


# ----------------------------------------------------------------------
# the server
# ----------------------------------------------------------------------
def _encode_response(
    status: int,
    payload: dict,
    *,
    keep_alive: bool,
    headers: dict[str, str] | None = None,
) -> bytes:
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    connection = "keep-alive" if keep_alive else "close"
    extra = "".join(
        f"{name}: {value}\r\n" for name, value in (headers or {}).items()
    )
    head = (
        f"HTTP/1.1 {status} {REASONS.get(status, 'OK')}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {connection}\r\n"
        f"{extra}"
        f"\r\n"
    )
    return head.encode("latin-1") + body


async def _read_request(
    reader: asyncio.StreamReader,
) -> Request | None:
    """Parse one request; ``None`` on a cleanly closed connection."""
    try:
        line = await reader.readline()
    except (ConnectionError, asyncio.LimitOverrunError):
        return None
    if not line:
        return None
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3:
        raise HttpError(400, "bad_request", "malformed request line")
    method, target, _version = parts
    headers: dict[str, str] = {}
    while True:
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n", b""):
            break
        name, _, value = raw.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length", "0"))
    except ValueError:
        raise HttpError(
            400, "bad_request", "malformed Content-Length header"
        ) from None
    if length > MAX_BODY_BYTES:
        raise HttpError(
            413,
            "payload_too_large",
            f"request body of {length} bytes exceeds the "
            f"{MAX_BODY_BYTES}-byte limit",
        )
    body = await reader.readexactly(length) if length else b""
    split = urlsplit(target)
    return Request(
        method=method.upper(),
        path=split.path or "/",
        query=parse_qs(split.query),
        headers=headers,
        body=body,
    )


class PatternServer:
    """The asyncio TCP server wrapping one :class:`PatternService`."""

    def __init__(
        self,
        service: PatternService,
        host: str = "127.0.0.1",
        port: int = 8373,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: asyncio.base_events.Server | None = None

    # ------------------------------------------------------------------
    async def start(self) -> tuple[str, int]:
        """Bind, start the maintenance loop, return the bound address."""
        await self.service.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.host, self.port

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        """Stop accepting, drain the maintainer, release the socket."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.close()

    # ------------------------------------------------------------------
    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        registry = get_registry()
        registry.counter("serve.connections").add(1)
        try:
            while True:
                try:
                    request = await _read_request(reader)
                except HttpError as exc:
                    registry.counter("serve.errors").add(1)
                    writer.write(
                        _encode_response(
                            exc.status, exc.payload(), keep_alive=False
                        )
                    )
                    await writer.drain()
                    return
                except asyncio.IncompleteReadError:
                    return
                if request is None:
                    return
                keep_alive = (
                    request.headers.get("connection", "keep-alive").lower()
                    != "close"
                )
                status, payload, headers = await self._dispatch(request)
                writer.write(
                    _encode_response(
                        status,
                        payload,
                        keep_alive=keep_alive,
                        headers=headers,
                    )
                )
                await writer.drain()
                if not keep_alive:
                    return
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(
        self, request: Request
    ) -> tuple[int, dict, dict[str, str]]:
        registry = get_registry()
        registry.counter("serve.requests").add(1)
        started = time.perf_counter()
        try:
            handler = ROUTES.get((request.method, request.path))
            if handler is None:
                known_paths = {path for _, path in ROUTES}
                if request.path in known_paths:
                    raise HttpError(
                        405,
                        "method_not_allowed",
                        f"{request.method} is not supported on "
                        f"{request.path}",
                    )
                raise HttpError(
                    404, "not_found", f"unknown path {request.path!r}"
                )
            status, payload = await handler(self.service, request)
            return status, payload, {}
        except HttpError as exc:
            registry.counter("serve.errors").add(1)
            return exc.status, exc.payload(), exc.headers
        except Exception as exc:  # noqa: BLE001 - boundary: never kill the
            # connection loop on a handler bug; surface it as a 500.
            registry.counter("serve.errors").add(1)
            return 500, HttpError(
                500, "internal_error", f"{type(exc).__name__}: {exc}"
            ).payload(), {}
        finally:
            registry.histogram("serve.request_ms").record(
                (time.perf_counter() - started) * 1000.0
            )


__all__ = [
    "HttpError",
    "MAX_BODY_BYTES",
    "PatternServer",
    "ROUTES",
    "Request",
    "endpoints",
]
