"""The pattern-serving service: reads off snapshots, writes via a queue.

:class:`PatternService` glues the serving story together:

* it owns a bootstrapped :class:`~repro.midas.maintainer.Midas` — the
  single writer of maintained state;
* it publishes an immutable :class:`~repro.serve.snapshot.PatternSnapshot`
  into a :class:`~repro.serve.snapshot.SnapshotStore` after every
  *committed* maintenance round (rolled-back, aborted and rejected
  rounds publish nothing, so readers can never observe them);
* it drains submitted :class:`~repro.graph.database.BatchUpdate`\\ s
  through a single background maintenance loop, running each round in
  a worker thread so the asyncio event loop keeps answering reads while
  MIDAS maintains in the background.

On top of the PR-6 behaviour this adds the durability and overload
story of docs/ROBUSTNESS.md:

* **write-ahead journaling** (``journal_dir=``): a submitted update is
  appended to the :class:`~repro.journal.segments.Journal` *before* it
  is acknowledged, every round outcome is journaled *before* the commit
  publishes or the waiter wakes, and a pickled-state checkpoint is cut
  every ``checkpoint_every`` commits so restart replay stays bounded.
  On construction with an initialised journal directory the service
  *recovers*: deterministic replay through ``Midas.apply_update``,
  digest cross-checks against every journaled commit, re-queued
  unresolved updates, and a fresh-oracle verification of the head;
* **admission control**: :meth:`PatternService.submit` sheds the write
  once ``queue_limit`` updates are already pending
  (:class:`~repro.exceptions.ServiceOverloaded` → HTTP 429 with
  ``Retry-After``) instead of letting the queue grow without bound —
  the queue itself is unbounded so crash recovery can always re-queue
  every journaled-but-unresolved update, even a backlog larger than
  the limit;
* **a supervised writer**: the maintenance loop catches per-round
  surprises (a ``failed`` status, never a silent death), a supervisor
  restarts a crashed loop with capped exponential backoff, and a
  circuit breaker holds new writes off after ``breaker_threshold``
  consecutive round failures;
* **a health state machine** — ``ok`` / ``degraded`` / ``draining`` /
  ``dead`` — surfaced by ``GET /healthz`` (503 once draining or dead);
* **graceful shutdown**: :meth:`close` drains the queue when there is
  no journal (nothing may be dropped) and relies on the journal
  otherwise (pending updates are already durable and will be re-queued
  by recovery on the next start).

The HTTP layer (:mod:`repro.serve.http`) never touches the maintainer:
every read handler pins a snapshot and answers from it alone.
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..exceptions import (
    ConfigurationError,
    ReproError,
    RolledBack,
    ServiceOverloaded,
    ServiceUnavailable,
)
from ..graph.database import BatchUpdate
from ..journal import (
    Journal,
    checkpoint_record,
    committed_record,
    load_latest_checkpoint,
    outcome_record,
    recover,
    snapshot_digest,
    submitted_record,
    write_checkpoint,
)
from ..midas.maintainer import Midas
from ..obs import get_registry
from ..resilience.faults import trip
from .snapshot import PatternSnapshot, SnapshotStore, build_snapshot

#: Submitted updates an operator can still query the status of; older
#: *resolved* entries are evicted FIFO — unresolved (queued) entries are
#: never trimmed, however old, so ``wait_for`` cannot strand.
STATUS_BACKLOG = 1024

#: Default bound on the update queue (admission control).
DEFAULT_QUEUE_LIMIT = 256

#: Queue occupancy above which health degrades (fraction of the limit).
QUEUE_HIGH_WATERMARK = 0.8

#: Consecutive round failures before the circuit breaker opens.
BREAKER_THRESHOLD = 5

#: Seconds the breaker stays open before letting one probe round through.
BREAKER_COOLDOWN_SECONDS = 5.0

#: Writer-loop crash restarts before the service declares itself dead.
MAX_WRITER_RESTARTS = 5

#: Initial supervisor backoff; doubles per restart up to the cap.
RESTART_BACKOFF_SECONDS = 0.05
RESTART_BACKOFF_CAP_SECONDS = 2.0

#: Committed rounds between snapshot checkpoints (replay bound).
CHECKPOINT_EVERY = 8

#: Numeric encoding of the health states (the ``serve.health`` gauge).
HEALTH_STATES = ("ok", "degraded", "draining", "dead")

_DRAIN = object()  # queue sentinel: clean writer shutdown


@dataclass
class UpdateStatus:
    """The lifecycle record of one submitted batch update."""

    update_id: int
    state: str  # queued | applied | rejected | rolled_back | aborted | failed
    detail: str = ""
    #: Snapshot version this update published (``applied`` only).
    version: int | None = None
    inserted_ids: list[int] = field(default_factory=list)
    deleted_ids: list[int] = field(default_factory=list)

    def to_dict(self) -> dict:
        payload = {
            "update_id": self.update_id,
            "status": self.state,
        }
        if self.detail:
            payload["detail"] = self.detail
        if self.version is not None:
            payload["version"] = self.version
        if self.state == "applied":
            payload["inserted_ids"] = list(self.inserted_ids)
            payload["deleted_ids"] = list(self.deleted_ids)
        return payload


class PatternService:
    """Snapshot-isolated serving facade over one :class:`Midas` maintainer.

    Without ``journal_dir`` the service is memory-only (the PR-6
    behaviour).  With it, every accepted update and every round outcome
    is journaled; pass a directory that already holds a checkpoint and
    the constructor *recovers* the previous incarnation's state instead
    of using *midas* (which may then be ``None``).
    """

    def __init__(
        self,
        midas: Midas | None,
        *,
        journal_dir: str | Path | None = None,
        fsync: str = "always",
        segment_max_bytes: int | None = None,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
        breaker_threshold: int = BREAKER_THRESHOLD,
        breaker_cooldown_seconds: float = BREAKER_COOLDOWN_SECONDS,
        checkpoint_every: int = CHECKPOINT_EVERY,
        max_restarts: int = MAX_WRITER_RESTARTS,
    ) -> None:
        self.store = SnapshotStore()
        self.started_at = time.time()
        self.queue_limit = queue_limit
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown_seconds = breaker_cooldown_seconds
        self.checkpoint_every = checkpoint_every
        self.max_restarts = max_restarts
        # Physically unbounded: admission control lives in submit()'s
        # qsize() check.  Recovery may legitimately re-queue more than
        # queue_limit journaled-but-unresolved updates (a full queue
        # plus the in-flight round at crash time), and close() must
        # always have room for the drain sentinel — a maxsize would
        # turn either into an asyncio.QueueFull crash.
        self._queue: asyncio.Queue = asyncio.Queue()
        self._statuses: dict[int, UpdateStatus] = {}
        self._events: dict[int, asyncio.Event] = {}
        self._writer: asyncio.Task | None = None
        self._supervisor: asyncio.Task | None = None
        self._draining = False
        self._dead = False
        self._dead_reason = ""
        self._restarting = False
        self._writer_restarts = 0
        self._breaker_state = "closed"  # closed | open | half_open
        self._breaker_opened_at = 0.0
        self._consecutive_failures = 0
        self._round_seconds_ema = 0.5
        self._journal_lock = threading.Lock()
        # Guards _next_update_id: submit() allocates on the event-loop
        # thread while _write_checkpoint() reads it from an executor
        # worker mid-round — a plain int under a lock keeps the two
        # from ever observing (or issuing) the same id twice.
        self._ids_lock = threading.Lock()
        self._next_update_id = 1
        self._commits_since_checkpoint = 0
        self._checkpoint_seq = 0
        self._last_checkpoint_update_id = 0

        self.journal: Journal | None = None
        self.journal_dir = Path(journal_dir) if journal_dir else None
        recovered = None
        if self.journal_dir is not None and (
            load_latest_checkpoint(self.journal_dir) is not None
        ):
            recovered = recover(
                self.journal_dir,
                fsync=fsync,
                segment_max_bytes=segment_max_bytes,
            )
        if recovered is not None:
            self.midas = recovered.midas
            self.journal = recovered.journal
            self._next_update_id = recovered.next_update_id
            self._checkpoint_seq = recovered.checkpoint.checkpoint_id + 1
            self._last_checkpoint_update_id = (
                recovered.checkpoint.last_update_id
            )
            self._commits_since_checkpoint = recovered.replayed_commits
            self.store.publish(recovered.head)
            self.last_recovery = recovered
            for update_id, payload in sorted(recovered.statuses.items()):
                status = UpdateStatus(
                    update_id=update_id,
                    state=payload["state"],
                    detail=payload.get("detail", ""),
                    version=payload.get("version"),
                    inserted_ids=payload.get("inserted_ids", []),
                    deleted_ids=payload.get("deleted_ids", []),
                )
                self._statuses[update_id] = status
            for update_id, update in recovered.pending:
                status = UpdateStatus(update_id=update_id, state="queued")
                self._statuses[update_id] = status
                self._events[update_id] = asyncio.Event()
                self._queue.put_nowait((update_id, update))
            self._trim_backlog()
        else:
            if midas is None:
                raise ConfigurationError(
                    "no maintainer given and the journal directory holds "
                    "no checkpoint to recover from"
                )
            self.midas = midas
            self.last_recovery = None
            if self.journal_dir is not None:
                journal_kwargs = {"fsync": fsync}
                if segment_max_bytes is not None:
                    journal_kwargs["segment_max_bytes"] = segment_max_bytes
                self.journal = Journal(self.journal_dir, **journal_kwargs)
            self.store.publish(self._freeze(version=1))
            if self.journal is not None:
                # Checkpoint 0: the bootstrap state, so recovery never
                # needs to re-run CATAPULT++.
                self._write_checkpoint()
        self._sync_health_gauge()

    # ------------------------------------------------------------------
    # snapshot construction (runs on the maintainer side only)
    # ------------------------------------------------------------------
    def _freeze(self, version: int) -> PatternSnapshot:
        midas = self.midas
        return build_snapshot(
            version,
            (
                (p.pattern_id, p.graph, p.provenance)
                for p in midas.patterns
            ),
            midas.oracle,
            database_size=len(midas.database),
        )

    # ------------------------------------------------------------------
    # health
    # ------------------------------------------------------------------
    @property
    def health_state(self) -> str:
        """``ok`` | ``degraded`` | ``draining`` | ``dead``."""
        if self._dead:
            return "dead"
        if self._draining:
            return "draining"
        if (
            self._breaker_state != "closed"
            or self._restarting
            or self._queue.qsize()
            >= max(1, int(self.queue_limit * QUEUE_HIGH_WATERMARK))
        ):
            return "degraded"
        return "ok"

    def health(self) -> dict:
        """The ``/healthz`` body (status code is the transport's job)."""
        state = self.health_state
        payload = {
            "status": state,
            "queue_depth": self.queue_depth,
            "queue_limit": self.queue_limit,
            "breaker": self._breaker_state,
            "consecutive_failures": self._consecutive_failures,
            "writer_restarts": self._writer_restarts,
            "uptime_seconds": time.time() - self.started_at,
        }
        if self._dead_reason:
            payload["detail"] = self._dead_reason
        if self.journal is not None:
            payload["journal"] = {
                "segments": self.journal.segment_count,
                "unresolved": len(self.journal.unresolved_ids()),
                "fsync": self.journal.fsync_policy,
            }
        return payload

    def _sync_health_gauge(self) -> None:
        get_registry().gauge("serve.health").set(
            HEALTH_STATES.index(self.health_state)
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Start the supervised maintenance loop (idempotent)."""
        if self._supervisor is None or self._supervisor.done():
            self._supervisor = asyncio.get_running_loop().create_task(
                self._supervise()
            )

    async def close(self, *, drain: bool | None = None) -> None:
        """Stop the writer; drain or journal pending updates, never drop.

        ``drain=None`` picks the safe default: drain the queue fully
        when there is no journal (an accepted update would otherwise
        vanish), skip draining when there is one (every pending update
        is already durable and recovery will re-queue it).
        """
        if drain is None:
            drain = self.journal is None
        self._draining = True
        self._sync_health_gauge()
        writer_alive = (
            self._supervisor is not None
            and not self._supervisor.done()
            and not self._dead
        )
        if writer_alive:
            if drain:
                await self._queue.join()
            # Hand the loop its shutdown sentinel and wait for a clean
            # exit — never cancel a round mid-flight.  The queue is
            # unbounded, so the sentinel always fits even when the
            # admission limit is reached (the drain=False journal case).
            self._queue.put_nowait(_DRAIN)
            try:
                await self._supervisor
            except asyncio.CancelledError:  # pragma: no cover - teardown
                pass
        elif self._supervisor is not None:
            if self._writer is not None and not self._writer.done():
                self._writer.cancel()
            self._supervisor.cancel()
            try:
                await self._supervisor
            except asyncio.CancelledError:
                pass
        self._supervisor = None
        self._writer = None
        if self.journal is not None:
            if drain:
                # Everything resolved: cut a final checkpoint so the
                # next start replays nothing.
                self._write_checkpoint()
            self.journal.close()

    # ------------------------------------------------------------------
    # the write path
    # ------------------------------------------------------------------
    async def submit(self, update: BatchUpdate) -> UpdateStatus:
        """Admission-controlled enqueue for the background maintainer.

        Returns queued status once admitted (use :meth:`wait_for` for
        the outcome).  Raises :class:`ServiceUnavailable` while
        draining, dead or with the breaker open, and
        :class:`ServiceOverloaded` at the ``queue_limit`` admission
        bound — with the journal attached the acknowledgement implied
        by a normal return is durable: the ``submitted`` record was
        appended (and fsynced, on a worker thread so reads keep
        serving) before this coroutine returned.
        """
        registry = get_registry()
        if self._draining:
            raise ServiceUnavailable(
                "service is draining for shutdown", reason="draining"
            )
        if self._dead:
            raise ServiceUnavailable(
                f"maintenance writer is dead: {self._dead_reason}",
                reason="writer_dead",
            )
        if self._breaker_state == "open":
            # The breaker half-opens at the admission edge: once the
            # cooldown has elapsed the next submit becomes the probe
            # round (the writer-side cooldown only covers items that
            # were already queued when the breaker opened).
            elapsed = time.monotonic() - self._breaker_opened_at
            if elapsed >= self.breaker_cooldown_seconds:
                self._breaker_state = "half_open"
                registry.gauge("serve.breaker_state").set(2)
                self._sync_health_gauge()
            else:
                registry.counter("serve.updates_shed").add(1)
                raise ServiceUnavailable(
                    f"circuit breaker open after "
                    f"{self._consecutive_failures} consecutive round "
                    f"failures",
                    reason="circuit_open",
                )
        if self._queue.qsize() >= self.queue_limit:
            registry.counter("serve.updates_shed").add(1)
            self._sync_health_gauge()
            raise ServiceOverloaded(
                f"update queue is full ({self.queue_limit} pending)",
                retry_after=self._retry_after(),
            )
        with self._ids_lock:
            update_id = self._next_update_id
            self._next_update_id += 1
        trip("serve.submit.pre_journal")
        if self.journal is not None:
            # Append + fsync off the event loop so read traffic keeps
            # flowing during the disk sync; awaited before the caller
            # sees the acknowledgement, preserving write-ahead order.
            await asyncio.get_running_loop().run_in_executor(
                None, self._append_submitted, update_id, update
            )
        trip("serve.submit.post_journal")
        status = UpdateStatus(update_id=update_id, state="queued")
        self._statuses[update_id] = status
        self._events[update_id] = asyncio.Event()
        self._queue.put_nowait((update_id, update))
        registry.counter("serve.updates_accepted").add(1)
        registry.gauge("serve.queue_depth").set(self._queue.qsize())
        self._trim_backlog()
        return status

    def _append_submitted(self, update_id: int, update: BatchUpdate) -> None:
        with self._journal_lock:
            self.journal.append(submitted_record(update_id, update))

    def _retry_after(self) -> float:
        """Seconds a shed client should wait: the estimated drain time."""
        estimate = self._queue.qsize() * self._round_seconds_ema
        return min(30.0, max(1.0, estimate))

    def status_of(self, update_id: int) -> UpdateStatus | None:
        return self._statuses.get(update_id)

    async def wait_for(self, update_id: int) -> UpdateStatus:
        """Wait until the maintainer has resolved *update_id*."""
        event = self._events.get(update_id)
        if event is not None:
            await event.wait()
        status = self._statuses.get(update_id)
        if status is None and event is not None:
            # Resolved and then trimmed from the backlog between the
            # event firing and this waiter waking: the resolution is
            # parked on the event itself.
            status = getattr(event, "result", None)
        if status is None:
            raise KeyError(f"unknown update id {update_id}")
        return status

    @property
    def queue_depth(self) -> int:
        return self._queue.qsize()

    def _trim_backlog(self) -> None:
        """Evict old *resolved* statuses; never an unresolved one.

        A queued (unresolved) entry must survive arbitrarily long —
        evicting it would strand ``wait_for`` callers and lose the
        operator's only handle on an accepted update.  Resolved entries
        park their outcome on the event object first, so a waiter that
        races the eviction still gets its answer.
        """
        if len(self._statuses) <= STATUS_BACKLOG:
            return
        for update_id in list(self._statuses):
            if len(self._statuses) <= STATUS_BACKLOG:
                break
            if self._statuses[update_id].state == "queued":
                continue
            del self._statuses[update_id]
            self._events.pop(update_id, None)

    def _resolve(self, update_id: int, status: UpdateStatus) -> None:
        self._statuses[update_id] = status
        event = self._events.get(update_id)
        if event is not None:
            event.result = status  # survives backlog eviction
            event.set()

    # ------------------------------------------------------------------
    # the supervised maintenance loop
    # ------------------------------------------------------------------
    async def _supervise(self) -> None:
        """Run the writer; restart it on a crash with capped backoff."""
        registry = get_registry()
        backoff = RESTART_BACKOFF_SECONDS
        while True:
            self._writer = asyncio.get_running_loop().create_task(
                self._maintain_loop()
            )
            try:
                await self._writer
                return  # drained cleanly
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # noqa: BLE001 - the loop machinery
                # itself crashed (not a round failure — those are caught
                # inside); restart it unless we're out of restarts.
                self._writer_restarts += 1
                registry.counter("serve.writer_restarts").add(1)
                if self._writer_restarts > self.max_restarts:
                    self._declare_dead(
                        f"writer crashed {self._writer_restarts} times; "
                        f"last: {type(exc).__name__}: {exc}"
                    )
                    return
                self._restarting = True
                self._sync_health_gauge()
                await asyncio.sleep(backoff)
                backoff = min(backoff * 2, RESTART_BACKOFF_CAP_SECONDS)
                self._restarting = False
                self._sync_health_gauge()

    def _declare_dead(self, reason: str) -> None:
        self._dead = True
        self._dead_reason = reason
        get_registry().counter("serve.writer_deaths").add(1)
        self._sync_health_gauge()
        # Tell every in-memory waiter; with a journal the updates stay
        # unresolved on disk and recovery re-queues them (at-least-once).
        for update_id, status in list(self._statuses.items()):
            if status.state == "queued":
                self._resolve(
                    update_id,
                    UpdateStatus(
                        update_id,
                        "failed",
                        detail=f"maintenance writer dead: {reason}",
                    ),
                )

    async def _maintain_loop(self) -> None:
        loop = asyncio.get_running_loop()
        registry = get_registry()
        while True:
            item = await self._queue.get()
            if item is _DRAIN:
                self._queue.task_done()
                return
            update_id, update = item
            registry.gauge("serve.queue_depth").set(self._queue.qsize())
            if self._breaker_state == "open":
                await self._breaker_cooldown()
            started = time.perf_counter()
            try:
                status = await loop.run_in_executor(
                    None, self._apply_one, update_id, update
                )
            except Exception as exc:  # noqa: BLE001 - an unexpected
                # failure (journal append, publish, a maintainer bug
                # outside the transactional wrapper) must never kill the
                # writer silently while /healthz keeps reporting ok.
                registry.counter("serve.updates_failed").add(1)
                status = UpdateStatus(
                    update_id,
                    "failed",
                    detail=f"{type(exc).__name__}: {exc}",
                )
                self._journal_outcome_best_effort(update_id, status)
            self._round_seconds_ema = (
                0.8 * self._round_seconds_ema
                + 0.2 * (time.perf_counter() - started)
            )
            self._note_round_outcome(status)
            self._resolve(update_id, status)
            self._queue.task_done()

    def _journal_outcome_best_effort(
        self, update_id: int, status: UpdateStatus
    ) -> None:
        if self.journal is None:
            return
        try:
            with self._journal_lock:
                self.journal.append(
                    outcome_record(update_id, "failed", status.detail),
                    sync=True,
                )
        except Exception:  # noqa: BLE001 - best effort: the update then
            # stays unresolved in the journal and is retried on recovery.
            pass

    # --- circuit breaker ----------------------------------------------
    def _note_round_outcome(self, status: UpdateStatus) -> None:
        registry = get_registry()
        if status.state == "applied":
            self._consecutive_failures = 0
            if self._breaker_state != "closed":
                self._breaker_state = "closed"
                registry.counter("serve.breaker_closed").add(1)
        elif status.state in ("rolled_back", "aborted", "failed"):
            self._consecutive_failures += 1
            if (
                self._breaker_state == "half_open"
                or self._consecutive_failures >= self.breaker_threshold
            ):
                if self._breaker_state != "open":
                    registry.counter("serve.breaker_opened").add(1)
                self._breaker_state = "open"
                self._breaker_opened_at = time.monotonic()
        # "rejected" is a client error: neither failure nor success.
        registry.gauge("serve.breaker_state").set(
            ("closed", "open", "half_open").index(self._breaker_state)
        )
        self._sync_health_gauge()

    async def _breaker_cooldown(self) -> None:
        """Hold the writer while the breaker is open; then half-open."""
        remaining = self.breaker_cooldown_seconds - (
            time.monotonic() - self._breaker_opened_at
        )
        if remaining > 0:
            await asyncio.sleep(remaining)
        self._breaker_state = "half_open"
        get_registry().gauge("serve.breaker_state").set(2)
        self._sync_health_gauge()

    # ------------------------------------------------------------------
    # one round (worker-thread side)
    # ------------------------------------------------------------------
    def _apply_one(self, update_id: int, update: BatchUpdate) -> UpdateStatus:
        """One maintenance round, worker-thread side.

        Only a committed round builds and publishes a snapshot; every
        failure path leaves the published head exactly as it was, which
        is the serving half of the PR-2 transactional guarantee.  With
        a journal, the outcome record is durable *before* the commit
        publishes or any waiter observes it — the write-ahead property
        the crash harness (`python -m repro crashtest`) asserts.
        """
        registry = get_registry()
        trip("serve.round.pre_apply")
        try:
            report = self.midas.apply_update(update)
        except ConfigurationError as exc:
            registry.counter("serve.updates_rejected").add(1)
            return self._journaled_failure(
                UpdateStatus(update_id, "rejected", detail=str(exc))
            )
        except RolledBack as exc:
            registry.counter("serve.updates_rolled_back").add(1)
            return self._journaled_failure(
                UpdateStatus(update_id, "rolled_back", detail=str(exc))
            )
        except ReproError as exc:
            registry.counter("serve.updates_rejected").add(1)
            return self._journaled_failure(
                UpdateStatus(
                    update_id,
                    "rejected",
                    detail=f"{type(exc).__name__}: {exc}",
                )
            )
        if report.aborted:
            registry.counter("serve.updates_aborted").add(1)
            return self._journaled_failure(
                UpdateStatus(
                    update_id, "aborted", detail=report.abort_reason or ""
                )
            )
        trip("serve.round.post_apply")
        version = self.store.version + 1
        snapshot = self._freeze(version)
        if self.journal is not None:
            with self._journal_lock:
                self.journal.append(
                    committed_record(
                        update_id,
                        version=version,
                        inserted_ids=list(report.inserted_ids),
                        deleted_ids=list(report.deleted_ids),
                        head_digest=snapshot_digest(snapshot),
                    ),
                    sync=True,
                )
        trip("serve.round.post_journal")
        self.store.publish(snapshot)
        trip("serve.publish.post")
        registry.counter("serve.updates_applied").add(1)
        self._commits_since_checkpoint += 1
        if (
            self.journal is not None
            and self._commits_since_checkpoint >= self.checkpoint_every
        ):
            self._write_checkpoint(last_update_id=update_id)
        return UpdateStatus(
            update_id,
            "applied",
            version=snapshot.version,
            inserted_ids=list(report.inserted_ids),
            deleted_ids=list(report.deleted_ids),
        )

    def _journaled_failure(self, status: UpdateStatus) -> UpdateStatus:
        if self.journal is not None:
            with self._journal_lock:
                self.journal.append(
                    outcome_record(
                        status.update_id, status.state, status.detail
                    ),
                    sync=True,
                )
        return status

    # ------------------------------------------------------------------
    # checkpoints
    # ------------------------------------------------------------------
    def _write_checkpoint(self, last_update_id: int | None = None) -> None:
        """Cut a snapshot checkpoint and prune fully-covered segments."""
        if self.journal is None or self.journal_dir is None:
            return
        if last_update_id is None:
            last_update_id = self._last_checkpoint_update_id
        checkpoint_id = self._checkpoint_seq
        write_checkpoint(
            self.journal_dir,
            checkpoint_id=checkpoint_id,
            midas=self.midas,
            version=self.store.version,
            last_update_id=last_update_id,
            next_update_id=self._peek_next_id(),
        )
        with self._journal_lock:
            self.journal.append(
                checkpoint_record(
                    checkpoint_id,
                    version=self.store.version,
                    last_update_id=last_update_id,
                ),
                sync=True,
            )
            self.journal.prune(last_update_id)
        self._checkpoint_seq += 1
        self._last_checkpoint_update_id = last_update_id
        self._commits_since_checkpoint = 0

    def _peek_next_id(self) -> int:
        """The next update id without consuming it (thread-safe)."""
        with self._ids_lock:
            return self._next_update_id


__all__ = [
    "BREAKER_THRESHOLD",
    "CHECKPOINT_EVERY",
    "DEFAULT_QUEUE_LIMIT",
    "HEALTH_STATES",
    "MAX_WRITER_RESTARTS",
    "PatternService",
    "STATUS_BACKLOG",
    "UpdateStatus",
]
