"""The pattern-serving service: reads off snapshots, writes via a queue.

:class:`PatternService` glues the three pieces of the serving story
together:

* it owns a bootstrapped :class:`~repro.midas.maintainer.Midas` — the
  single writer of maintained state;
* it publishes an immutable :class:`~repro.serve.snapshot.PatternSnapshot`
  into a :class:`~repro.serve.snapshot.SnapshotStore` after every
  *committed* maintenance round (rolled-back, aborted and rejected
  rounds publish nothing, so readers can never observe them);
* it drains submitted :class:`~repro.graph.database.BatchUpdate`\\ s
  through a single background maintenance loop, running each round in
  a worker thread so the asyncio event loop keeps answering reads while
  MIDAS maintains in the background.

The HTTP layer (:mod:`repro.serve.http`) never touches the maintainer:
every read handler pins a snapshot and answers from it alone.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from dataclasses import dataclass, field

from ..exceptions import ConfigurationError, ReproError, RolledBack
from ..graph.database import BatchUpdate
from ..midas.maintainer import Midas
from ..obs import get_registry
from .snapshot import PatternSnapshot, SnapshotStore, build_snapshot

#: Submitted updates an operator can still query the status of; older
#: entries are evicted FIFO (the queue itself is never bounded by this).
STATUS_BACKLOG = 1024


@dataclass
class UpdateStatus:
    """The lifecycle record of one submitted batch update."""

    update_id: int
    state: str  # queued | applied | rejected | rolled_back | aborted
    detail: str = ""
    #: Snapshot version this update published (``applied`` only).
    version: int | None = None
    inserted_ids: list[int] = field(default_factory=list)
    deleted_ids: list[int] = field(default_factory=list)

    def to_dict(self) -> dict:
        payload = {
            "update_id": self.update_id,
            "status": self.state,
        }
        if self.detail:
            payload["detail"] = self.detail
        if self.version is not None:
            payload["version"] = self.version
        if self.state == "applied":
            payload["inserted_ids"] = list(self.inserted_ids)
            payload["deleted_ids"] = list(self.deleted_ids)
        return payload


class PatternService:
    """Snapshot-isolated serving facade over one :class:`Midas` maintainer."""

    def __init__(self, midas: Midas) -> None:
        self.midas = midas
        self.store = SnapshotStore()
        self.started_at = time.time()
        self._ids = itertools.count(1)
        self._queue: asyncio.Queue[tuple[int, BatchUpdate]] = asyncio.Queue()
        self._statuses: dict[int, UpdateStatus] = {}
        self._events: dict[int, asyncio.Event] = {}
        self._maintainer: asyncio.Task | None = None
        self.store.publish(self._freeze(version=1))

    # ------------------------------------------------------------------
    # snapshot construction (runs on the maintainer side only)
    # ------------------------------------------------------------------
    def _freeze(self, version: int) -> PatternSnapshot:
        midas = self.midas
        return build_snapshot(
            version,
            (
                (p.pattern_id, p.graph, p.provenance)
                for p in midas.patterns
            ),
            midas.oracle,
            database_size=len(midas.database),
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Start the background maintenance loop (idempotent)."""
        if self._maintainer is None or self._maintainer.done():
            self._maintainer = asyncio.get_running_loop().create_task(
                self._maintain_loop()
            )

    async def close(self) -> None:
        """Stop the maintenance loop; pending updates stay queued."""
        if self._maintainer is not None:
            self._maintainer.cancel()
            try:
                await self._maintainer
            except asyncio.CancelledError:
                pass
            self._maintainer = None

    # ------------------------------------------------------------------
    # the write path
    # ------------------------------------------------------------------
    def submit(self, update: BatchUpdate) -> UpdateStatus:
        """Queue *update* for the background maintainer; returns queued
        status immediately (use :meth:`wait_for` for the outcome)."""
        registry = get_registry()
        update_id = next(self._ids)
        status = UpdateStatus(update_id=update_id, state="queued")
        self._statuses[update_id] = status
        self._events[update_id] = asyncio.Event()
        self._queue.put_nowait((update_id, update))
        registry.counter("serve.updates_accepted").add(1)
        registry.gauge("serve.queue_depth").set(self._queue.qsize())
        self._trim_backlog()
        return status

    def status_of(self, update_id: int) -> UpdateStatus | None:
        return self._statuses.get(update_id)

    async def wait_for(self, update_id: int) -> UpdateStatus:
        """Wait until the maintainer has resolved *update_id*."""
        event = self._events.get(update_id)
        if event is not None:
            await event.wait()
        status = self._statuses.get(update_id)
        if status is None:
            raise KeyError(f"unknown update id {update_id}")
        return status

    @property
    def queue_depth(self) -> int:
        return self._queue.qsize()

    def _trim_backlog(self) -> None:
        while len(self._statuses) > STATUS_BACKLOG:
            oldest = next(iter(self._statuses))
            self._statuses.pop(oldest, None)
            self._events.pop(oldest, None)

    # ------------------------------------------------------------------
    # the maintenance loop
    # ------------------------------------------------------------------
    async def _maintain_loop(self) -> None:
        loop = asyncio.get_running_loop()
        registry = get_registry()
        while True:
            update_id, update = await self._queue.get()
            registry.gauge("serve.queue_depth").set(self._queue.qsize())
            status = await loop.run_in_executor(
                None, self._apply_one, update_id, update
            )
            self._statuses[update_id] = status
            event = self._events.get(update_id)
            if event is not None:
                event.set()
            self._queue.task_done()

    def _apply_one(self, update_id: int, update: BatchUpdate) -> UpdateStatus:
        """One maintenance round, worker-thread side.

        Only a committed round builds and publishes a snapshot; every
        failure path leaves the published head exactly as it was, which
        is the serving half of the PR-2 transactional guarantee.
        """
        registry = get_registry()
        try:
            report = self.midas.apply_update(update)
        except ConfigurationError as exc:
            registry.counter("serve.updates_rejected").add(1)
            return UpdateStatus(update_id, "rejected", detail=str(exc))
        except RolledBack as exc:
            registry.counter("serve.updates_rolled_back").add(1)
            return UpdateStatus(update_id, "rolled_back", detail=str(exc))
        except ReproError as exc:
            registry.counter("serve.updates_rejected").add(1)
            return UpdateStatus(
                update_id,
                "rejected",
                detail=f"{type(exc).__name__}: {exc}",
            )
        if report.aborted:
            registry.counter("serve.updates_aborted").add(1)
            return UpdateStatus(
                update_id, "aborted", detail=report.abort_reason or ""
            )
        snapshot = self.store.publish(self._freeze(self.store.version + 1))
        registry.counter("serve.updates_applied").add(1)
        return UpdateStatus(
            update_id,
            "applied",
            version=snapshot.version,
            inserted_ids=list(report.inserted_ids),
            deleted_ids=list(report.deleted_ids),
        )


__all__ = ["PatternService", "STATUS_BACKLOG", "UpdateStatus"]
