"""Serve-side load generation: the smoke test and ``serve-bench``.

Two drivers over a real in-process :class:`~repro.serve.http.
PatternServer` (actual TCP, actual HTTP parsing — nothing is mocked):

* :func:`run_smoke` — exercise every endpoint once, success and error
  paths, then shut down cleanly.  This is the CI serve gate
  (``python -m repro serve --smoke``).
* :func:`run_bench` — drive the :mod:`repro.workload.user_model`
  simulated users concurrently against the server while a background
  writer submits update batches, then report p50/p99 latency per
  endpoint, sustained QPS and the staleness window.  The CLI
  (``python -m repro serve-bench``) writes the result as
  ``BENCH_serve.json``.

Each simulated client does what a VQI front-end does per query: fetch
the panel (``GET /patterns``), run the PR-0 user model over the fetched
patterns to formulate a query locally, then issue ``GET /cover`` and
``GET /scov`` for the pattern it used.  Latencies are measured
client-side around whole HTTP round trips.
"""

from __future__ import annotations

import asyncio
import json
import random
import time

from ..datasets.molecules import MoleculeGenerator
from ..graph.io import graph_from_dict, graph_to_dict
from ..midas.maintainer import Midas
from ..obs import get_registry
from ..workload.queries import generate_queries
from ..workload.user_model import SimulatedUser
from .http import PatternServer
from .service import PatternService


#: Per-request wall-clock deadline; a stuck server cannot hang a client
#: loop (or the smoke gate) forever.
DEFAULT_REQUEST_TIMEOUT = 5.0

#: Initial retry backoff; doubled per attempt, jittered, capped.
RETRY_BACKOFF_SECONDS = 0.1
RETRY_BACKOFF_CAP_SECONDS = 2.0

#: The transport failures a retry can help with (the request may or may
#: not have reached the server — retry only what is safe to repeat).
RETRYABLE_ERRORS = (
    TimeoutError,
    ConnectionError,
    asyncio.IncompleteReadError,
    OSError,
)


class HttpClient:
    """A minimal keep-alive HTTP/1.1 JSON client (stdlib only).

    Every request runs under a deadline (``timeout``); a timed-out or
    torn connection is closed immediately — its stream may hold half a
    response — and the next request transparently reconnects.
    :meth:`request_with_retry` adds bounded retries with jittered
    exponential backoff for idempotent requests.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float = DEFAULT_REQUEST_TIMEOUT,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        #: Response headers of the most recent request (lower-cased keys).
        self.last_headers: dict[str, str] = {}
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        *,
        timeout: float = DEFAULT_REQUEST_TIMEOUT,
    ) -> "HttpClient":
        client = cls(host, port, timeout=timeout)
        await client._ensure_connected()
        return client

    async def _ensure_connected(self) -> None:
        if self._writer is None:
            self._reader, self._writer = await asyncio.wait_for(
                asyncio.open_connection(self.host, self.port), self.timeout
            )

    async def request(
        self,
        method: str,
        target: str,
        payload: dict | None = None,
        *,
        timeout: float | None = None,
    ) -> tuple[int, dict]:
        await self._ensure_connected()
        try:
            return await asyncio.wait_for(
                self._roundtrip(method, target, payload),
                timeout if timeout is not None else self.timeout,
            )
        except RETRYABLE_ERRORS:
            # The connection may hold a half-read response: poison it so
            # the next request starts fresh.
            await self.close()
            raise

    async def _roundtrip(
        self, method: str, target: str, payload: dict | None
    ) -> tuple[int, dict]:
        body = b""
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
        head = (
            f"{method} {target} HTTP/1.1\r\n"
            f"Host: localhost\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: keep-alive\r\n\r\n"
        )
        self._writer.write(head.encode("latin-1") + body)
        await self._writer.drain()
        status_line = await self._reader.readline()
        if not status_line:
            raise ConnectionError("server closed the connection")
        status = int(status_line.split()[1])
        length = 0
        headers: dict[str, str] = {}
        while True:
            raw = await self._reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        self.last_headers = headers
        data = await self._reader.readexactly(length) if length else b"{}"
        return status, json.loads(data.decode("utf-8"))

    async def request_with_retry(
        self,
        method: str,
        target: str,
        payload: dict | None = None,
        *,
        retries: int = 2,
        backoff_seconds: float = RETRY_BACKOFF_SECONDS,
        rng: random.Random | None = None,
        timeout: float | None = None,
    ) -> tuple[int, dict]:
        """:meth:`request` with bounded, jittered-backoff retries.

        Only transport failures (timeout, torn connection) are retried —
        an HTTP error status is a valid answer and returned as-is.  Use
        for idempotent requests; retrying a ``POST /updates`` can apply
        the batch twice.
        """
        draw = rng.random if rng is not None else random.random
        delay = backoff_seconds
        for attempt in range(retries + 1):
            try:
                return await self.request(
                    method, target, payload, timeout=timeout
                )
            except RETRYABLE_ERRORS:
                if attempt == retries:
                    raise
                await asyncio.sleep(delay * (0.5 + draw()))
                delay = min(delay * 2, RETRY_BACKOFF_CAP_SECONDS)
        raise AssertionError("unreachable")  # pragma: no cover

    async def close(self) -> None:
        if self._writer is None:
            return
        writer, self._writer, self._reader = self._writer, None, None
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


# ----------------------------------------------------------------------
# percentile helper (client-side, nearest rank)
# ----------------------------------------------------------------------
def _percentile(values: list[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = round((q / 100.0) * (len(ordered) - 1))
    return ordered[rank]


def _latency_summary(samples: dict[str, list[float]]) -> dict[str, dict]:
    return {
        endpoint: {
            "count": len(values),
            "p50_ms": _percentile(values, 50),
            "p99_ms": _percentile(values, 99),
            "max_ms": max(values) if values else 0.0,
        }
        for endpoint, values in sorted(samples.items())
    }


# ----------------------------------------------------------------------
# the smoke test (CI serve gate)
# ----------------------------------------------------------------------
async def _smoke_session(midas: Midas) -> list[str]:
    """Hit every route (success + error paths); return failure strings."""
    failures: list[str] = []

    def expect(label: str, got, want) -> None:
        if got != want:
            failures.append(f"{label}: expected {want!r}, got {got!r}")

    server = PatternServer(PatternService(midas), port=0)
    host, port = await server.start()
    client = await HttpClient.connect(host, port)
    try:
        status, body = await client.request("GET", "/healthz")
        expect("GET /healthz status", status, 200)
        expect("healthz status field", body.get("status"), "ok")

        status, body = await client.request("GET", "/patterns")
        expect("GET /patterns status", status, 200)
        pattern_ids = [p["id"] for p in body.get("patterns", [])]
        if not pattern_ids:
            failures.append("GET /patterns returned an empty panel")
        version = body.get("version")

        if pattern_ids:
            status, body = await client.request(
                "GET", f"/cover?pattern={pattern_ids[0]}"
            )
            expect("GET /cover status", status, 200)
            expect("cover version pins", body.get("version"), version)

            status, body = await client.request(
                "GET", f"/scov?pattern={pattern_ids[0]}"
            )
            expect("GET /scov status", status, 200)

        status, body = await client.request("GET", "/scov")
        expect("GET /scov (set) status", status, 200)

        status, body = await client.request("GET", "/cover?pattern=999999")
        expect("GET /cover unknown-pattern status", status, 404)
        status, body = await client.request("GET", "/cover?pattern=xyz")
        expect("GET /cover bad-param status", status, 400)
        status, body = await client.request("GET", "/nope")
        expect("GET /nope status", status, 404)
        status, body = await client.request("POST", "/patterns")
        expect("POST /patterns status", status, 405)

        generator = MoleculeGenerator(seed=20260808)
        update = {
            "insertions": [
                graph_to_dict(g) for g in generator.generate_many(2)
            ],
            "deletions": [],
        }
        status, body = await client.request(
            "POST", "/updates?wait=1", payload=update
        )
        expect("POST /updates status", status, 200)
        expect("update applied", body.get("status"), "applied")
        expect("update version", body.get("version"), (version or 0) + 1)

        status, body = await client.request("GET", "/patterns")
        expect("post-update version", body.get("version"), (version or 0) + 1)

        status, body = await client.request("GET", "/metricz")
        expect("GET /metricz status", status, 200)
        counters = body.get("counters", {})
        if "serve.requests" not in counters:
            failures.append("/metricz is missing the serve.requests counter")
    finally:
        await client.close()
        await server.close()
    return failures


def run_smoke(midas: Midas) -> int:
    """Exercise every endpoint against *midas*; 0 on success, 1 on failure."""
    failures = asyncio.run(_smoke_session(midas))
    if failures:
        for failure in failures:
            print(f"  SMOKE FAIL {failure}")
        return 1
    print(
        f"serve smoke ok: {len(set(path for _, path in _routes()))} "
        f"endpoints exercised, clean shutdown"
    )
    return 0


def _routes():
    from .http import ROUTES

    return ROUTES


# ----------------------------------------------------------------------
# the load-generator harness
# ----------------------------------------------------------------------
async def _client_loop(
    host: str,
    port: int,
    stop_at: float,
    user: SimulatedUser,
    queries,
    samples: dict[str, list[float]],
    observations: list[tuple[float, int]],
    skew: list[int],
    errors: list[str],
) -> None:
    client = await HttpClient.connect(host, port)
    rng = random.Random(user.seed)
    iteration = 0
    try:
        while time.monotonic() < stop_at:
            started = time.perf_counter()
            try:
                status, body = await client.request_with_retry(
                    "GET", "/patterns", rng=rng
                )
            except RETRYABLE_ERRORS as exc:
                errors.append(
                    f"GET /patterns transport failure after retries: "
                    f"{type(exc).__name__}"
                )
                continue
            samples["GET /patterns"].append(
                (time.perf_counter() - started) * 1000.0
            )
            if status != 200:
                errors.append(f"GET /patterns -> {status}")
                continue
            panel_version = body["version"]
            observations.append((time.monotonic(), panel_version))
            panel = [
                graph_from_dict(p["graph"]) for p in body["patterns"]
            ]
            pattern_ids = [p["id"] for p in body["patterns"]]
            if queries and panel:
                query = queries[iteration % len(queries)]
                user.formulate(query, panel, trial=iteration)
            if pattern_ids:
                target = rng.choice(pattern_ids)
                for endpoint in (
                    f"/cover?pattern={target}",
                    f"/scov?pattern={target}",
                ):
                    label = f"GET {endpoint.split('?')[0]}"
                    started = time.perf_counter()
                    try:
                        status, body = await client.request_with_retry(
                            "GET", endpoint, rng=rng
                        )
                    except RETRYABLE_ERRORS as exc:
                        errors.append(
                            f"{label} transport failure after retries: "
                            f"{type(exc).__name__}"
                        )
                        continue
                    samples[label].append(
                        (time.perf_counter() - started) * 1000.0
                    )
                    if status == 200:
                        observations.append(
                            (time.monotonic(), body["version"])
                        )
                        # A maintenance round committed between the panel
                        # fetch and this follow-up query (or the pattern
                        # was swapped out: 404 below).
                        if body["version"] != panel_version:
                            skew.append(body["version"] - panel_version)
                    elif status == 404:
                        skew.append(1)
                    else:
                        errors.append(f"{label} -> {status}")
            iteration += 1
    finally:
        await client.close()


def _staleness_windows(
    store, observations: list[tuple[float, int]]
) -> list[float]:
    """Per published version: seconds until a client first observed it.

    This is the operational staleness window — how long after a commit
    the fleet of readers kept being answered from the previous snapshot.
    """
    windows = []
    ordered = sorted(observations)
    for version in range(2, store.version + 1):
        published = store.published_monotonic(version)
        if published is None:
            continue
        first_seen = next(
            (t for t, seen in ordered if seen >= version and t >= published),
            None,
        )
        if first_seen is not None:
            windows.append(max(0.0, first_seen - published))
    return windows


async def _writer_loop(
    host: str,
    port: int,
    stop_at: float,
    interval_seconds: float,
    batch_size: int,
    seed: int,
    samples: dict[str, list[float]],
    outcomes: dict[str, int],
    errors: list[str],
) -> None:
    """Submit update batches while the clients read.

    Batches alternate pure insertion with mixed insert/delete, deleting
    only ids this writer inserted earlier — the server reports them back
    in the ``applied`` status.
    """
    client = await HttpClient.connect(host, port)
    generator = MoleculeGenerator(seed=seed)
    rng = random.Random(seed)
    owned_ids: list[int] = []
    try:
        while time.monotonic() < stop_at:
            await asyncio.sleep(interval_seconds)
            if time.monotonic() >= stop_at:
                break
            deletions = []
            if owned_ids and rng.random() < 0.5:
                rng.shuffle(owned_ids)
                deletions = [
                    owned_ids.pop()
                    for _ in range(min(2, len(owned_ids)))
                ]
            payload = {
                "insertions": [
                    graph_to_dict(g)
                    for g in generator.generate_many(batch_size)
                ],
                "deletions": deletions,
            }
            started = time.perf_counter()
            try:
                # No retry: resubmitting a non-idempotent update batch
                # after an ambiguous failure could apply it twice.  A
                # deadline long enough for one full maintenance round.
                status, body = await client.request(
                    "POST", "/updates?wait=1", payload=payload, timeout=60.0
                )
            except RETRYABLE_ERRORS as exc:
                errors.append(
                    f"POST /updates transport failure: {type(exc).__name__}"
                )
                continue
            samples["POST /updates"].append(
                (time.perf_counter() - started) * 1000.0
            )
            if status != 200:
                errors.append(f"POST /updates -> {status}")
                continue
            state = body.get("status", "unknown")
            outcomes[state] = outcomes.get(state, 0) + 1
            if state == "applied":
                owned_ids.extend(body.get("inserted_ids", []))
    finally:
        await client.close()


async def _bench_session(
    midas: Midas,
    *,
    duration_seconds: float,
    clients: int,
    update_interval_seconds: float,
    update_batch_size: int,
    seed: int,
) -> dict:
    registry = get_registry()
    server = PatternServer(PatternService(midas), port=0)
    host, port = await server.start()

    queries = generate_queries(
        dict(midas.database.items()), count=24, size_range=(2, 6), seed=seed
    )
    samples: dict[str, list[float]] = {
        "GET /patterns": [],
        "GET /cover": [],
        "GET /scov": [],
        "POST /updates": [],
    }
    observations: list[tuple[float, int]] = []
    skew: list[int] = []
    errors: list[str] = []
    outcomes: dict[str, int] = {}

    started = time.monotonic()
    stop_at = started + duration_seconds
    tasks = [
        asyncio.create_task(
            _client_loop(
                host,
                port,
                stop_at,
                SimulatedUser(seed=seed + i),
                queries,
                samples,
                observations,
                skew,
                errors,
            )
        )
        for i in range(clients)
    ]
    tasks.append(
        asyncio.create_task(
            _writer_loop(
                host,
                port,
                stop_at,
                update_interval_seconds,
                update_batch_size,
                seed + 10_007,
                samples,
                outcomes,
                errors,
            )
        )
    )
    await asyncio.gather(*tasks)
    elapsed = time.monotonic() - started
    windows = _staleness_windows(server.service.store, observations)
    await server.close()

    staleness_versions = registry.get("serve.staleness_versions")
    read_requests = sum(
        len(values)
        for endpoint, values in samples.items()
        if endpoint.startswith("GET")
    )
    total_requests = sum(len(values) for values in samples.values())
    return {
        "figure": "serve",
        "generated_by": "python -m repro serve-bench",
        "config": {
            "duration_seconds": duration_seconds,
            "clients": clients,
            "update_interval_seconds": update_interval_seconds,
            "update_batch_size": update_batch_size,
            "seed": seed,
            "database_size": len(midas.database),
        },
        "latency_ms": _latency_summary(samples),
        "throughput": {
            "total_requests": total_requests,
            "read_requests": read_requests,
            "elapsed_seconds": elapsed,
            "sustained_qps": total_requests / elapsed if elapsed else 0.0,
            "errors": len(errors),
        },
        "staleness": {
            "snapshots_published": server.service.store.version,
            "max_version_seen": (
                max(seen for _, seen in observations) if observations else 0
            ),
            "window_ms_max": max(windows) * 1000.0 if windows else 0.0,
            "window_ms_mean": (
                sum(windows) / len(windows) * 1000.0 if windows else 0.0
            ),
            "cross_version_iterations": len(skew),
            "stale_reads": registry.counter("serve.stale_reads").value,
            "max_in_request_lag": (
                staleness_versions.max if staleness_versions else None
            )
            or 0,
        },
        "updates": {"submitted": sum(outcomes.values()), **outcomes},
    }


def run_bench(
    midas: Midas,
    *,
    duration_seconds: float = 5.0,
    clients: int = 8,
    update_interval_seconds: float = 0.5,
    update_batch_size: int = 3,
    seed: int = 0,
) -> dict:
    """Run the concurrent read/maintain load test; returns the figure."""
    return asyncio.run(
        _bench_session(
            midas,
            duration_seconds=duration_seconds,
            clients=clients,
            update_interval_seconds=update_interval_seconds,
            update_batch_size=update_batch_size,
            seed=seed,
        )
    )


# ----------------------------------------------------------------------
# the overload run: prove shedding, not queue growth
# ----------------------------------------------------------------------
async def _overload_session(
    midas: Midas, *, queue_limit: int, writers: int, bursts: int, seed: int
) -> dict:
    """Hammer ``POST /updates`` far past the admission limit.

    The point is the *protection*, not the throughput: the bounded
    queue must shed with 429s (each carrying ``Retry-After``) instead
    of growing without bound, ``/healthz`` must degrade while the
    backlog is high, and every accepted update must still resolve.
    """
    service = PatternService(midas, queue_limit=queue_limit)
    server = PatternServer(service, port=0)
    host, port = await server.start()

    generator = MoleculeGenerator(seed=seed)
    payloads = [
        {
            "insertions": [graph_to_dict(generator.generate())],
            "deletions": [],
        }
        for _ in range(writers * bursts)
    ]
    counts = {"accepted": 0, "shed": 0, "unavailable": 0, "other": 0}
    retry_after_values: list[int] = []
    accepted_ids: list[int] = []
    max_queue_depth = 0
    degraded_seen = False

    async def one_writer(index: int) -> None:
        nonlocal max_queue_depth, degraded_seen
        client = await HttpClient.connect(host, port)
        try:
            for burst in range(bursts):
                payload = payloads[index * bursts + burst]
                status, body = await client.request(
                    "POST", "/updates", payload=payload
                )
                if status == 202:
                    counts["accepted"] += 1
                    accepted_ids.append(body["update_id"])
                elif status == 429:
                    counts["shed"] += 1
                    retry_after = client.last_headers.get("retry-after")
                    if retry_after is not None:
                        retry_after_values.append(int(retry_after))
                elif status == 503:
                    counts["unavailable"] += 1
                else:
                    counts["other"] += 1
                max_queue_depth = max(
                    max_queue_depth, service.queue_depth
                )
                status, body = await client.request("GET", "/healthz")
                if body.get("status") == "degraded":
                    degraded_seen = True
        finally:
            await client.close()

    await asyncio.gather(*(one_writer(i) for i in range(writers)))
    # Let the maintainer resolve everything it accepted, then stop.
    resolved = 0
    for update_id in accepted_ids:
        status = await service.wait_for(update_id)
        if status.state != "queued":
            resolved += 1
    await server.close()

    return {
        "figure": "serve_overload",
        "generated_by": "python -m repro serve-bench --overload",
        "config": {
            "queue_limit": queue_limit,
            "writers": writers,
            "bursts_per_writer": bursts,
            "seed": seed,
            "database_size": len(midas.database),
        },
        "outcomes": counts,
        "accepted_resolved": resolved,
        "max_queue_depth_observed": max_queue_depth,
        "queue_bounded": max_queue_depth <= queue_limit,
        "degraded_health_observed": degraded_seen,
        "retry_after": {
            "present_on_all_429s": (
                len(retry_after_values) == counts["shed"]
            ),
            "min_seconds": min(retry_after_values, default=0),
            "max_seconds": max(retry_after_values, default=0),
        },
    }


def run_overload(
    midas: Midas,
    *,
    queue_limit: int = 4,
    writers: int = 4,
    bursts: int = 8,
    seed: int = 0,
) -> dict:
    """Run the admission-control overload probe; returns the figure."""
    return asyncio.run(
        _overload_session(
            midas,
            queue_limit=queue_limit,
            writers=writers,
            bursts=bursts,
            seed=seed,
        )
    )


__all__ = [
    "DEFAULT_REQUEST_TIMEOUT",
    "HttpClient",
    "RETRYABLE_ERRORS",
    "run_bench",
    "run_overload",
    "run_smoke",
]
