"""Snapshot checkpoints: bound replay to the records after a checkpoint.

A checkpoint file (``ckpt-00000003.bin``) captures the full maintained
state — the pickled :class:`~repro.midas.maintainer.Midas` — plus the
metadata recovery needs to resume:

* ``version`` — the published snapshot head when the checkpoint was cut;
* ``last_update_id`` — every update with id ≤ this is already folded
  into the state (the single-writer loop resolves updates strictly in
  submission order, so one high-water mark suffices);
* ``next_update_id`` — seeds the id counter so re-submitted and new
  updates never collide with journaled ones.

Layout: one CRC-framed JSON meta header (same framing as journal
records) followed by the raw pickle bytes, whose own CRC and length are
recorded in the header.  Files are written to a temp name, fsynced,
then atomically renamed — a crash mid-checkpoint leaves the previous
checkpoint intact, and :func:`load_latest_checkpoint` falls back past
any checkpoint that fails validation.
"""

from __future__ import annotations

import io
import json
import os
import pickle
import re
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path

from ..exceptions import JournalError
from ..obs import get_registry
from ..resilience.faults import trip

CHECKPOINT_PATTERN = re.compile(r"^ckpt-(\d{8})\.bin$")

#: Older checkpoints beyond this many are deleted after a new one lands.
CHECKPOINT_RETENTION = 2

_FRAME_HEADER = struct.Struct(">II")


@dataclass
class Checkpoint:
    """One loaded checkpoint: metadata plus the revived maintainer."""

    checkpoint_id: int
    version: int
    last_update_id: int
    next_update_id: int
    midas: object
    path: Path


def _checkpoint_name(checkpoint_id: int) -> str:
    return f"ckpt-{checkpoint_id:08d}.bin"


def write_checkpoint(
    directory: str | Path,
    *,
    checkpoint_id: int,
    midas,
    version: int,
    last_update_id: int,
    next_update_id: int,
) -> Path:
    """Durably write one checkpoint; atomic against crashes."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    state = pickle.dumps(midas, protocol=pickle.HIGHEST_PROTOCOL)
    meta = {
        "type": "checkpoint",
        "checkpoint_id": checkpoint_id,
        "version": version,
        "last_update_id": last_update_id,
        "next_update_id": next_update_id,
        "state_len": len(state),
        "state_crc": zlib.crc32(state),
    }
    body = json.dumps(meta, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )
    buffer = io.BytesIO()
    buffer.write(_FRAME_HEADER.pack(len(body), zlib.crc32(body)))
    buffer.write(body)
    buffer.write(state)
    target = directory / _checkpoint_name(checkpoint_id)
    temporary = directory / (target.name + ".tmp")
    with temporary.open("wb") as handle:
        handle.write(buffer.getvalue())
        handle.flush()
        os.fsync(handle.fileno())
    trip("journal.checkpoint")
    os.replace(temporary, target)
    registry = get_registry()
    registry.counter("journal.checkpoints").add(1)
    registry.gauge("journal.checkpoint_bytes").set(len(state))
    _retire_old_checkpoints(directory)
    return target


def _retire_old_checkpoints(directory: Path) -> None:
    paths = sorted(
        path
        for path in directory.iterdir()
        if CHECKPOINT_PATTERN.match(path.name)
    )
    for path in paths[:-CHECKPOINT_RETENTION]:
        path.unlink(missing_ok=True)


def _load_one(path: Path) -> Checkpoint:
    data = path.read_bytes()
    if len(data) < _FRAME_HEADER.size:
        raise JournalError(f"checkpoint {path.name} is truncated")
    length, crc = _FRAME_HEADER.unpack_from(data, 0)
    body_end = _FRAME_HEADER.size + length
    body = data[_FRAME_HEADER.size:body_end]
    if len(body) != length or zlib.crc32(body) != crc:
        raise JournalError(f"checkpoint {path.name} header fails its CRC")
    meta = json.loads(body.decode("utf-8"))
    state = data[body_end:]
    if len(state) != meta["state_len"] or (
        zlib.crc32(state) != meta["state_crc"]
    ):
        raise JournalError(f"checkpoint {path.name} state fails its CRC")
    midas = pickle.loads(state)
    return Checkpoint(
        checkpoint_id=meta["checkpoint_id"],
        version=meta["version"],
        last_update_id=meta["last_update_id"],
        next_update_id=meta["next_update_id"],
        midas=midas,
        path=path,
    )


def load_latest_checkpoint(directory: str | Path) -> Checkpoint | None:
    """Load the newest validating checkpoint; ``None`` when none exists.

    A checkpoint that fails validation (torn temp promoted by a buggy
    filesystem, partial write, unpicklable state) is skipped with a
    counter bump and the next-newest is tried — the retention window
    exists precisely so one bad file cannot strand recovery.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return None
    paths = sorted(
        (
            path
            for path in directory.iterdir()
            if CHECKPOINT_PATTERN.match(path.name)
        ),
        reverse=True,
    )
    for path in paths:
        try:
            return _load_one(path)
        except (JournalError, OSError, pickle.UnpicklingError, EOFError,
                KeyError, ValueError):
            get_registry().counter("journal.checkpoint_fallbacks").add(1)
            continue
    return None


__all__ = [
    "CHECKPOINT_PATTERN",
    "CHECKPOINT_RETENTION",
    "Checkpoint",
    "load_latest_checkpoint",
    "write_checkpoint",
]
