"""Crash recovery: replay the journal through the round machinery.

:func:`recover` rebuilds the exact serving state a crashed process had
durably acknowledged:

1. load the newest validating checkpoint (the pickled maintainer plus
   its version / update-id high-water marks);
2. open the journal — torn tails from the crash are truncated here;
3. replay every ``committed`` record past the checkpoint by re-running
   the *same* transactional ``Midas.apply_update`` on the journaled
   ``submitted`` payload.  Maintenance rounds are deterministic, so the
   replayed round must reproduce the original commit exactly — the
   inserted/deleted ids and the published-head digest recorded in the
   ``committed`` record are cross-checked and any divergence fails
   recovery loudly rather than serving a silently different panel;
4. collect resolved statuses (for the operator-facing backlog) and the
   still-unresolved ``submitted`` updates, which the service re-queues;
5. rebuild the published snapshot head and — the PR-6 serve-oracle
   check — verify its cover sets and scov values against a *fresh*
   :class:`~repro.patterns.metrics.CoverageOracle` over the recovered
   sample view.

The guarantees the crash-injection harness asserts: zero lost committed
rounds (every journaled commit is in the recovered head) and zero
silently dropped accepted updates (every journaled-but-unresolved
submission comes back as pending).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

from ..exceptions import JournalError
from ..graph.database import BatchUpdate
from ..obs import get_registry
from .checkpoint import Checkpoint, load_latest_checkpoint
from .records import Record, snapshot_digest, update_from_record
from .segments import Journal


@dataclass
class RecoveredState:
    """Everything a service needs to resume after :func:`recover`."""

    midas: object
    #: The rebuilt published head (a ``PatternSnapshot``).
    head: object
    head_version: int
    head_digest: str
    checkpoint: Checkpoint
    #: update_id -> resolved status payload (state/detail/version/ids).
    statuses: dict[int, dict] = field(default_factory=dict)
    #: Journaled but unresolved updates, in submission order.
    pending: list[tuple[int, BatchUpdate]] = field(default_factory=list)
    next_update_id: int = 1
    replayed_commits: int = 0
    records_scanned: int = 0
    recovery_seconds: float = 0.0
    #: The journal, left open for the resuming service to keep using.
    journal: Journal | None = None


def _freeze_head(midas, version: int):
    # Imported lazily: repro.serve imports repro.journal at module load,
    # so the reverse edge must wait until call time.
    from ..serve.snapshot import build_snapshot

    return build_snapshot(
        version,
        ((p.pattern_id, p.graph, p.provenance) for p in midas.patterns),
        midas.oracle,
        database_size=len(midas.database),
    )


def verify_head_against_fresh_oracle(head, midas) -> list[str]:
    """The serve-oracle cross-check, recovery flavoured.

    Recomputes every pattern's cover and scov with a fresh full-scan
    :class:`CoverageOracle` over the recovered maintainer's sample view
    and compares against the rebuilt head snapshot.  Returns mismatch
    descriptions (empty = clean).
    """
    from ..covindex.engine import use_covindex
    from ..patterns.metrics import CoverageOracle

    failures: list[str] = []
    with use_covindex(False):
        view = {
            graph_id: midas.database[graph_id]
            for graph_id in midas.oracle.graph_ids()
        }
        fresh = CoverageOracle(view)
        graphs = [entry.graph for entry in head.patterns]
        for entry in head.patterns:
            want = fresh.cover(entry.graph)
            if entry.cover != want:
                failures.append(
                    f"pattern {entry.pattern_id}: recovered cover "
                    f"{sorted(entry.cover)} != fresh {sorted(want)}"
                )
            if entry.scov != fresh.scov(entry.graph):
                failures.append(
                    f"pattern {entry.pattern_id}: recovered scov drifted"
                )
        if head.set_scov != fresh.set_scov(graphs):
            failures.append("recovered set_scov drifted from fresh oracle")
    return failures


def _status_payload(record: Record) -> dict:
    payload = {
        "update_id": record.update_id,
        "state": record.type if record.type != "committed" else "applied",
        "detail": record.payload.get("detail", ""),
    }
    if record.type == "committed":
        payload["version"] = record.payload["version"]
        payload["inserted_ids"] = list(record.payload["inserted_ids"])
        payload["deleted_ids"] = list(record.payload["deleted_ids"])
    return payload


def recover(
    directory: str | Path,
    *,
    fsync: str = "always",
    segment_max_bytes: int | None = None,
    verify: bool = True,
) -> RecoveredState:
    """Rebuild serving state from the journal directory.

    Raises :class:`~repro.exceptions.JournalError` when no checkpoint
    exists (the directory was never initialised by a journaled service),
    when replay diverges from a ``committed`` record, or — with
    ``verify`` — when the rebuilt head fails the fresh-oracle check.
    """
    started = time.perf_counter()
    registry = get_registry()
    checkpoint = load_latest_checkpoint(directory)
    if checkpoint is None:
        raise JournalError(
            f"no valid checkpoint under {directory}; cannot recover"
        )
    journal_kwargs = {"fsync": fsync}
    if segment_max_bytes is not None:
        journal_kwargs["segment_max_bytes"] = segment_max_bytes
    journal = Journal(directory, **journal_kwargs)
    records = journal.records()

    midas = checkpoint.midas
    version = checkpoint.version
    last_digest = ""
    statuses: dict[int, dict] = {}
    submitted: dict[int, Record] = {}
    max_update_id = checkpoint.next_update_id - 1
    replayed = 0

    for record in records:
        update_id = record.update_id
        if update_id is not None:
            max_update_id = max(max_update_id, update_id)
        if record.type == "submitted":
            submitted[update_id] = record
            continue
        if record.type == "checkpoint":
            continue
        # Outcome records: everything at or below the checkpoint's
        # high-water mark is already folded into the pickled state.
        statuses[update_id] = _status_payload(record)
        if record.type != "committed":
            continue
        if update_id <= checkpoint.last_update_id:
            last_digest = record.payload["head_digest"]
            continue
        source = submitted.get(update_id)
        if source is None:
            raise JournalError(
                f"committed record for update {update_id} has no "
                f"journaled submission — pruning bug or missing segment"
            )
        report = midas.apply_update(update_from_record(source))
        if report.aborted:
            raise JournalError(
                f"replay of update {update_id} aborted "
                f"({report.abort_reason}) but the journal records a "
                f"commit — replay diverged"
            )
        version += 1
        replayed += 1
        if version != record.payload["version"]:
            raise JournalError(
                f"replay version {version} != journaled version "
                f"{record.payload['version']} for update {update_id}"
            )
        if (
            list(report.inserted_ids) != record.payload["inserted_ids"]
            or list(report.deleted_ids) != record.payload["deleted_ids"]
        ):
            raise JournalError(
                f"replay of update {update_id} touched different "
                f"database ids than the journaled commit — replay diverged"
            )
        head = _freeze_head(midas, version)
        digest = snapshot_digest(head)
        if digest != record.payload["head_digest"]:
            raise JournalError(
                f"replayed head digest mismatch at update {update_id}: "
                f"{digest[:12]} != journaled "
                f"{record.payload['head_digest'][:12]}"
            )
        last_digest = digest

    head = _freeze_head(midas, version)
    if not last_digest:
        last_digest = snapshot_digest(head)
    if verify:
        failures = verify_head_against_fresh_oracle(head, midas)
        if failures:
            raise JournalError(
                "recovered head failed the fresh-oracle cross-check: "
                + "; ".join(failures)
            )

    pending = [
        (update_id, update_from_record(submitted[update_id]))
        for update_id in sorted(journal.unresolved_ids())
        if update_id in submitted
    ]
    elapsed = time.perf_counter() - started
    registry.counter("journal.recoveries").add(1)
    registry.counter("journal.records_replayed").add(len(records))
    registry.histogram("journal.recovery_ms").record(elapsed * 1000.0)
    return RecoveredState(
        midas=midas,
        head=head,
        head_version=version,
        head_digest=last_digest,
        checkpoint=checkpoint,
        statuses=statuses,
        pending=pending,
        next_update_id=max_update_id + 1,
        replayed_commits=replayed,
        records_scanned=len(records),
        recovery_seconds=elapsed,
        journal=journal,
    )


__all__ = [
    "RecoveredState",
    "recover",
    "verify_head_against_fresh_oracle",
]
