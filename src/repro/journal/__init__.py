"""Durable write-ahead journaling for the serving/maintenance path.

The serving layer (PR 6) kept every committed round and every queued
update in process memory; this package is the durability half of the
ROADMAP's out-of-core story (open item 3): an append-only,
fsync-policied journal whose replay drives the *existing* transactional
round machinery, so a crashed server restarts into exactly the state it
had acknowledged.

* :mod:`repro.journal.records` — length-prefixed, CRC32-checksummed
  record framing and the record vocabulary (``submitted``,
  ``committed``, ``rejected``/``rolled_back``/``aborted``/``failed``,
  ``checkpoint``);
* :mod:`repro.journal.segments` — :class:`Journal`: segment rotation,
  fsync policies (``always``/``interval``/``never``), torn-tail
  truncation on open, checkpoint-driven pruning;
* :mod:`repro.journal.checkpoint` — atomic pickled-state checkpoints
  that bound replay length;
* :mod:`repro.journal.recovery` — :func:`recover`: deterministic replay
  through ``Midas.apply_update`` with per-commit digest cross-checks
  and a fresh-oracle verification of the rebuilt head.

Operator guide: docs/ROBUSTNESS.md ("Durability"); the crash-injection
harness that proves the guarantees is ``python -m repro crashtest``.
"""

from .checkpoint import (
    CHECKPOINT_RETENTION,
    Checkpoint,
    load_latest_checkpoint,
    write_checkpoint,
)
from .records import (
    OUTCOME_TYPES,
    RECORD_TYPES,
    Record,
    checkpoint_record,
    committed_record,
    encode_record,
    iter_frames,
    outcome_record,
    snapshot_digest,
    submitted_record,
    update_from_record,
)
from .recovery import RecoveredState, recover, verify_head_against_fresh_oracle
from .segments import DEFAULT_SEGMENT_MAX_BYTES, FSYNC_POLICIES, Journal

__all__ = [
    "CHECKPOINT_RETENTION",
    "Checkpoint",
    "DEFAULT_SEGMENT_MAX_BYTES",
    "FSYNC_POLICIES",
    "Journal",
    "OUTCOME_TYPES",
    "RECORD_TYPES",
    "RecoveredState",
    "Record",
    "checkpoint_record",
    "committed_record",
    "encode_record",
    "iter_frames",
    "load_latest_checkpoint",
    "outcome_record",
    "recover",
    "snapshot_digest",
    "submitted_record",
    "update_from_record",
    "verify_head_against_fresh_oracle",
    "write_checkpoint",
]
