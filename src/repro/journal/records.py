"""Journal record types and the length-prefixed, CRC-checksummed framing.

Every record is one JSON object framed as::

    +----------------+----------------+----------------------+
    | length (u32 BE)| CRC32 (u32 BE) | payload (JSON, UTF-8)|
    +----------------+----------------+----------------------+

The CRC covers the payload bytes only; the length covers the payload
only.  A reader that hits a frame whose length runs past end-of-file,
or whose CRC does not match, has found either a *torn tail* (a crash
mid-append — expected, truncated on open) or *corruption* (anything
else — fatal, see :class:`~repro.exceptions.JournalCorruption`).

Record types, mirroring the lifecycle of one submitted batch update
(see docs/ROBUSTNESS.md, "Durability"):

``submitted``
    The update's full payload (insertions as graph dicts, deletion
    ids), appended *before* the client is acknowledged — the write-ahead
    property.
``committed``
    The round committed: snapshot ``version`` it published, the
    database ids it touched, and a digest of the published head for the
    recovery cross-check.
``rejected`` / ``rolled_back`` / ``aborted`` / ``failed``
    The round resolved without publishing; ``detail`` carries the cause.
``checkpoint``
    Marker that a state checkpoint with ``checkpoint_id`` was durably
    written; replay before ``last_update_id`` is unnecessary.
"""

from __future__ import annotations

import hashlib
import json
import struct
import zlib
from collections.abc import Iterator
from dataclasses import dataclass

from ..exceptions import JournalCorruption
from ..graph.database import BatchUpdate
from ..graph.io import graph_from_dict, graph_to_dict

_FRAME_HEADER = struct.Struct(">II")

#: Outcome record types that resolve a submitted update.
OUTCOME_TYPES = ("committed", "rejected", "rolled_back", "aborted", "failed")

#: Every record type the journal accepts.
RECORD_TYPES = ("submitted", "checkpoint") + OUTCOME_TYPES


@dataclass(frozen=True)
class Record:
    """One decoded journal record plus its physical location."""

    type: str
    payload: dict
    #: Segment file name and byte offset of the frame start.
    segment: str = ""
    offset: int = -1

    @property
    def update_id(self) -> int | None:
        return self.payload.get("update_id")


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------
def encode_record(payload: dict) -> bytes:
    """Frame *payload* (which must carry a valid ``type``)."""
    if payload.get("type") not in RECORD_TYPES:
        raise ValueError(f"unknown record type {payload.get('type')!r}")
    body = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )
    return _FRAME_HEADER.pack(len(body), zlib.crc32(body)) + body


class TornTail(Exception):
    """Internal signal: the byte stream ends in a partial/corrupt frame."""

    def __init__(self, offset: int):
        super().__init__(f"torn tail at offset {offset}")
        self.offset = offset


def iter_frames(data: bytes, *, segment: str = "") -> Iterator[Record]:
    """Decode consecutive frames from *data*.

    Raises :class:`TornTail` when the stream ends mid-frame or the last
    frame fails its CRC — the caller decides whether that is an expected
    crash artefact (last segment: truncate) or fatal corruption (any
    earlier segment).  A bad CRC *followed by more data that parses* is
    indistinguishable from a torn tail only at the tail, so the caller
    must treat a ``TornTail`` with parseable frames beyond it as
    corruption; the :class:`~repro.journal.segments.Journal` open scan
    does, via :func:`find_frame`.
    """
    offset = 0
    size = len(data)
    while offset < size:
        if offset + _FRAME_HEADER.size > size:
            raise TornTail(offset)
        length, crc = _FRAME_HEADER.unpack_from(data, offset)
        body_start = offset + _FRAME_HEADER.size
        body_end = body_start + length
        if body_end > size:
            raise TornTail(offset)
        body = data[body_start:body_end]
        if zlib.crc32(body) != crc:
            raise TornTail(offset)
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            raise TornTail(offset) from None
        if (
            not isinstance(payload, dict)
            or payload.get("type") not in RECORD_TYPES
        ):
            raise JournalCorruption(
                "well-framed record with unknown type "
                f"{payload.get('type') if isinstance(payload, dict) else payload!r}",
                segment=segment,
                offset=offset,
            )
        yield Record(
            type=payload["type"], payload=payload, segment=segment,
            offset=offset,
        )
        offset = body_end


def find_frame(data: bytes, start: int) -> int | None:
    """Byte offset of the first fully-valid frame at or after *start*.

    A frame counts only when its declared length fits in *data*, its
    CRC matches, and the body decodes to a known record type — the same
    bar :func:`iter_frames` sets.  Distinguishes a genuine torn tail
    (partial final frame, nothing parseable beyond it) from mid-segment
    corruption (a damaged record with intact, fsync-acknowledged
    records after it): the former truncates, the latter must refuse to.
    Returns ``None`` when no such frame exists.
    """
    size = len(data)
    offset = max(0, start)
    while offset + _FRAME_HEADER.size <= size:
        length, crc = _FRAME_HEADER.unpack_from(data, offset)
        body_start = offset + _FRAME_HEADER.size
        body_end = body_start + length
        if body_end <= size:
            body = data[body_start:body_end]
            if zlib.crc32(body) == crc:
                try:
                    payload = json.loads(body.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError):
                    payload = None
                if (
                    isinstance(payload, dict)
                    and payload.get("type") in RECORD_TYPES
                ):
                    return offset
        offset += 1
    return None


# ----------------------------------------------------------------------
# record constructors (the only payload shapes the serve path writes)
# ----------------------------------------------------------------------
def submitted_record(update_id: int, update: BatchUpdate) -> dict:
    return {
        "type": "submitted",
        "update_id": update_id,
        "insertions": [graph_to_dict(g) for g in update.insertions],
        "deletions": list(update.deletions),
    }


def committed_record(
    update_id: int,
    *,
    version: int,
    inserted_ids: list[int],
    deleted_ids: list[int],
    head_digest: str,
) -> dict:
    return {
        "type": "committed",
        "update_id": update_id,
        "version": version,
        "inserted_ids": list(inserted_ids),
        "deleted_ids": list(deleted_ids),
        "head_digest": head_digest,
    }


def outcome_record(update_id: int, state: str, detail: str = "") -> dict:
    if state not in ("rejected", "rolled_back", "aborted", "failed"):
        raise ValueError(f"not a terminal non-commit state: {state!r}")
    return {"type": state, "update_id": update_id, "detail": detail}


def checkpoint_record(
    checkpoint_id: int, *, version: int, last_update_id: int
) -> dict:
    return {
        "type": "checkpoint",
        "checkpoint_id": checkpoint_id,
        "version": version,
        "last_update_id": last_update_id,
    }


def update_from_record(record: Record) -> BatchUpdate:
    """Rebuild the :class:`BatchUpdate` of a ``submitted`` record."""
    if record.type != "submitted":
        raise ValueError(f"not a submitted record: {record.type}")
    return BatchUpdate.of(
        insertions=[
            graph_from_dict(entry) for entry in record.payload["insertions"]
        ],
        deletions=record.payload["deletions"],
    )


def snapshot_digest(snapshot) -> str:
    """Content digest of everything a reader can observe in *snapshot*.

    Excludes the wall-clock ``published_at`` (not reproducible across a
    recovery) — this is the same observable surface the PR-6 serve
    oracle compares, hashed so a ``committed`` record can carry it.
    """
    surface = (
        snapshot.version,
        snapshot.database_size,
        snapshot.sample_size,
        snapshot.set_scov,
        [
            [entry.pattern_id, sorted(entry.cover), entry.scov]
            for entry in snapshot.patterns
        ],
    )
    blob = json.dumps(surface, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


__all__ = [
    "OUTCOME_TYPES",
    "RECORD_TYPES",
    "Record",
    "TornTail",
    "checkpoint_record",
    "committed_record",
    "encode_record",
    "find_frame",
    "iter_frames",
    "outcome_record",
    "snapshot_digest",
    "submitted_record",
    "update_from_record",
]
