"""The append-only, segment-rotated write-ahead journal.

A :class:`Journal` owns a directory of segment files
(``wal-00000001.log``, ``wal-00000002.log``, ...).  Records are
appended to the highest-numbered segment; when the active segment
exceeds ``segment_max_bytes`` the writer rotates to a fresh one.
Durability is governed by the fsync policy:

``always``
    ``fsync`` after every append — a record handed back from
    :meth:`Journal.append` survives a machine crash.  The default, and
    what the crash-injection harness assumes.
``interval``
    ``fsync`` at most once per ``fsync_interval_seconds`` — bounded
    data loss, much cheaper under write bursts.
``never``
    Leave flushing to the OS page cache — benchmark mode only.

Opening a journal scans every segment front to back: a partial or
CRC-failing frame at the very tail of the *last* segment — with no
parseable frame anywhere beyond it — is a torn tail (the crash
interrupted an append) and is truncated away; the same damage anywhere
else, including mid-way through the active segment with valid records
after it, is unrecoverable corruption and raises
:class:`~repro.exceptions.JournalCorruption` rather than silently
dropping acknowledged records.
"""

from __future__ import annotations

import os
import re
import threading
import time
from pathlib import Path

from ..exceptions import JournalCorruption, JournalError
from ..obs import get_registry
from ..resilience.faults import trip
from .records import (
    OUTCOME_TYPES,
    Record,
    TornTail,
    encode_record,
    find_frame,
    iter_frames,
)

SEGMENT_PATTERN = re.compile(r"^wal-(\d{8})\.log$")

#: Rotate the active segment once it exceeds this many bytes.
DEFAULT_SEGMENT_MAX_BYTES = 4 * 1024 * 1024

FSYNC_POLICIES = ("always", "interval", "never")


def _segment_name(seq: int) -> str:
    return f"wal-{seq:08d}.log"


class _SegmentInfo:
    """In-memory index of one segment, for checkpoint-driven pruning."""

    __slots__ = ("path", "max_update_id", "submitted_ids")

    def __init__(self, path: Path):
        self.path = path
        self.max_update_id = -1
        self.submitted_ids: set[int] = set()

    def note(self, record: Record) -> None:
        update_id = record.update_id
        if update_id is not None:
            self.max_update_id = max(self.max_update_id, update_id)
            if record.type == "submitted":
                self.submitted_ids.add(update_id)


class Journal:
    """Append-only journal over a directory of rotated segment files."""

    def __init__(
        self,
        directory: str | Path,
        *,
        fsync: str = "always",
        fsync_interval_seconds: float = 0.05,
        segment_max_bytes: int = DEFAULT_SEGMENT_MAX_BYTES,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise JournalError(
                f"unknown fsync policy {fsync!r}; pick one of "
                f"{FSYNC_POLICIES}"
            )
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync_policy = fsync
        self.fsync_interval_seconds = fsync_interval_seconds
        self.segment_max_bytes = segment_max_bytes
        self._last_fsync = 0.0
        self._handle = None
        # Appends arrive from the event-loop thread (submit) and from
        # executor threads (round outcomes); one reentrant lock keeps
        # frames from interleaving.
        self._lock = threading.RLock()
        self._segments: list[_SegmentInfo] = []
        #: Submitted ids with no outcome record yet (drives pruning).
        self._unresolved: set[int] = set()
        self._open()

    # ------------------------------------------------------------------
    # open / recovery scan
    # ------------------------------------------------------------------
    def _segment_paths(self) -> list[Path]:
        paths = [
            path
            for path in self.directory.iterdir()
            if SEGMENT_PATTERN.match(path.name)
        ]
        return sorted(paths)

    def _open(self) -> None:
        registry = get_registry()
        paths = self._segment_paths()
        for position, path in enumerate(paths):
            info = _SegmentInfo(path)
            data = path.read_bytes()
            is_last = position == len(paths) - 1
            try:
                for record in iter_frames(data, segment=path.name):
                    info.note(record)
                    self._note_resolution(record)
            except TornTail as torn:
                if not is_last:
                    raise JournalCorruption(
                        "unreadable record before the journal tail",
                        segment=path.name,
                        offset=torn.offset,
                    ) from None
                # A true torn tail is the *end* of the stream: a crash
                # interrupted the final append and nothing parseable can
                # follow the partial frame.  A valid frame anywhere past
                # the damage means mid-segment corruption — truncating
                # would silently drop fsync-acknowledged records.
                if find_frame(data, torn.offset + 1) is not None:
                    raise JournalCorruption(
                        "valid records follow an unreadable frame in "
                        "the active segment — mid-segment corruption, "
                        "not a torn tail",
                        segment=path.name,
                        offset=torn.offset,
                    ) from None
                # Crash artefact: drop the partial frame, keep the rest.
                with path.open("r+b") as handle:
                    handle.truncate(torn.offset)
                registry.counter("journal.torn_tail_truncations").add(1)
            self._segments.append(info)
        if not self._segments:
            self._segments.append(
                _SegmentInfo(self.directory / _segment_name(1))
            )
            self._segments[-1].path.touch()
        self._handle = self._segments[-1].path.open("ab")

    def _note_resolution(self, record: Record) -> None:
        if record.type == "submitted":
            self._unresolved.add(record.update_id)
        elif record.type in OUTCOME_TYPES:
            self._unresolved.discard(record.update_id)

    # ------------------------------------------------------------------
    # append path
    # ------------------------------------------------------------------
    @property
    def active_segment(self) -> Path:
        return self._segments[-1].path

    @property
    def segment_count(self) -> int:
        return len(self._segments)

    def unresolved_ids(self) -> set[int]:
        """Submitted update ids with no outcome record yet."""
        return set(self._unresolved)

    def append(self, payload: dict, *, sync: bool | None = None) -> Record:
        """Append one record; durable per the fsync policy before return.

        ``sync=True`` forces an fsync regardless of policy (used for
        outcome records under ``interval`` so acknowledgements are never
        reported before they are durable); ``sync=False`` never syncs.
        """
        with self._lock:
            if self._handle is None:
                raise JournalError("journal is closed")
            trip("journal.append")
            registry = get_registry()
            frame = encode_record(payload)
            record = Record(
                type=payload["type"],
                payload=payload,
                segment=self.active_segment.name,
                offset=self._handle.tell(),
            )
            self._handle.write(frame)
            self._handle.flush()
            self._segments[-1].note(record)
            self._note_resolution(record)
            registry.counter("journal.records_appended").add(1)
            registry.counter("journal.bytes_appended").add(len(frame))
            if sync is None:
                sync = self.fsync_policy == "always" or (
                    self.fsync_policy == "interval"
                    and time.monotonic() - self._last_fsync
                    >= self.fsync_interval_seconds
                )
            if sync:
                self._fsync()
            if self._handle.tell() >= self.segment_max_bytes:
                self._rotate()
            return record

    def sync(self) -> None:
        """Force an fsync of the active segment."""
        with self._lock:
            if self._handle is not None:
                self._handle.flush()
                self._fsync()

    def _fsync(self) -> None:
        os.fsync(self._handle.fileno())
        self._last_fsync = time.monotonic()
        get_registry().counter("journal.fsyncs").add(1)

    def _rotate(self) -> None:
        trip("journal.rotate")
        self._handle.close()
        seq = int(SEGMENT_PATTERN.match(self.active_segment.name).group(1))
        info = _SegmentInfo(self.directory / _segment_name(seq + 1))
        info.path.touch()
        self._segments.append(info)
        self._handle = info.path.open("ab")
        get_registry().counter("journal.segments_rotated").add(1)

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------
    def records(self) -> list[Record]:
        """Every record currently on disk, in append order."""
        out: list[Record] = []
        with self._lock:
            for info in self._segments:
                data = info.path.read_bytes()
                try:
                    out.extend(iter_frames(data, segment=info.path.name))
                except TornTail as torn:  # pragma: no cover - defensive;
                    # the open-time scan already truncated any torn tail.
                    raise JournalCorruption(
                        "unreadable record during re-read",
                        segment=info.path.name,
                        offset=torn.offset,
                    ) from None
        return out

    # ------------------------------------------------------------------
    # checkpoint-driven pruning
    # ------------------------------------------------------------------
    def prune(self, last_update_id: int) -> int:
        """Delete full segments made redundant by a checkpoint.

        A non-active segment can go once every update it mentions is
        resolved and covered by the checkpoint (``<= last_update_id``)
        — nothing in it would ever be replayed.  Returns the number of
        segments removed.
        """
        removed = 0
        with self._lock:
            keep: list[_SegmentInfo] = []
            for info in self._segments[:-1]:
                unresolved_here = info.submitted_ids & self._unresolved
                if (
                    info.max_update_id <= last_update_id
                    and not unresolved_here
                ):
                    info.path.unlink(missing_ok=True)
                    removed += 1
                else:
                    keep.append(info)
            self._segments = keep + self._segments[-1:]
        if removed:
            get_registry().counter("journal.segments_pruned").add(removed)
        return removed

    # ------------------------------------------------------------------
    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.flush()
                try:
                    self._fsync()
                except (OSError, ValueError):  # pragma: no cover - teardown
                    pass
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


__all__ = [
    "DEFAULT_SEGMENT_MAX_BYTES",
    "FSYNC_POLICIES",
    "Journal",
    "SEGMENT_PATTERN",
]
