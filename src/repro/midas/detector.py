"""Major/minor modification detection via graphlet distributions.

MIDAS compares the graphlet frequency distribution ψ of ``D`` with that
of ``D ⊕ ΔD`` (paper, Section 3.4): a batch is a **major** (Type 1)
modification when ``dist(ψ_D, ψ_{D⊕ΔD}) ≥ ε`` and **minor** (Type 2)
otherwise.  Only major modifications trigger pattern maintenance; minor
ones still maintain clusters, CSGs and indices.

:class:`ModificationDetector` keeps the per-graph graphlet counts cached
so a classification costs one counting pass over the *modified* graphs
only.
"""

from __future__ import annotations

import enum
from collections.abc import Mapping
from dataclasses import dataclass

from ..graph.labeled_graph import LabeledGraph
from ..graphlets.distribution import (
    GraphletDistribution,
    distribution_distance,
)


class ModificationType(enum.Enum):
    """The two degrees of database modification (Section 3.4)."""

    MAJOR = "major"
    MINOR = "minor"


@dataclass(frozen=True)
class Classification:
    """Outcome of classifying one batch update."""

    kind: ModificationType
    distance: float
    epsilon: float

    @property
    def is_major(self) -> bool:
        return self.kind is ModificationType.MAJOR


class ModificationDetector:
    """Tracks ψ_D incrementally and classifies batch updates."""

    def __init__(
        self,
        graphs: Mapping[int, LabeledGraph],
        epsilon: float,
        measure: str = "euclidean",
    ) -> None:
        if epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        self.epsilon = epsilon
        self.measure = measure
        self._distribution = GraphletDistribution(graphs)

    @property
    def distribution(self) -> GraphletDistribution:
        return self._distribution

    def classify(
        self,
        added: Mapping[int, LabeledGraph],
        removed_ids: set[int],
        commit: bool = True,
    ) -> Classification:
        """Classify the batch (Δ⁺ = *added*, Δ⁻ = *removed_ids*).

        With ``commit=True`` (the default) the tracked distribution is
        advanced to the post-batch state; otherwise the classification is
        a dry run.
        """
        before = self._distribution.frequencies()
        after = self._distribution.copy()
        for graph_id in removed_ids:
            after.remove(graph_id)
        for graph_id, graph in added.items():
            after.add(graph_id, graph)
        distance = distribution_distance(
            before, after.frequencies(), measure=self.measure
        )
        kind = (
            ModificationType.MAJOR
            if distance >= self.epsilon
            else ModificationType.MINOR
        )
        if commit:
            self._distribution = after
        return Classification(kind, distance, self.epsilon)
