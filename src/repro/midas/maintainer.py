"""The MIDAS maintainer — Algorithm 1 of the paper.

:class:`Midas` owns the full maintained state: the database snapshot, the
FCT pool, the graph clusters, the CSG set, the FCT/IFE indices, the lazy
sample, the graphlet-distribution detector and the displayed pattern
set.  ``bootstrap`` builds that state with one CATAPULT++ run;
``apply_update`` then processes each batch ΔD:

1. remove deleted graphs from their clusters and CSGs (lines 2, 7);
2. maintain the FCT pool incrementally (line 5) and refresh the
   clustering feature space;
3. assign inserted graphs to nearest clusters and integrate them into
   the CSGs (lines 1, 6–7), fine-splitting oversized clusters;
4. classify the batch by graphlet-distribution distance (lines 3–4, 8);
5. on a **major** modification, generate candidates from the evolved
   CSGs with coverage-based pruning and run the multi-scan swap
   (lines 9–11, Sections 5–6);
6. maintain the indices and the sample either way (line 12).

``apply_update`` returns a :class:`MaintenanceReport` with the paper's
performance measures: PMT (total maintenance time), PGT (candidate
generation + swap time), the classification, and the executed swaps.
"""

from __future__ import annotations

import copy

from dataclasses import dataclass, field

from ..cache.stores import caching_enabled, get_caches
from ..catapult.candidate import CandidateGenerator
from ..check.invariants import check_enabled, check_pattern_budget
from ..catapult.pipeline import CatapultPlusPlus, CatapultResult
from ..exceptions import ConfigurationError, ResilienceError, RolledBack
from ..execution import ExecutionConfig
from ..graph.database import BatchUpdate, GraphDatabase
from ..graph.labeled_graph import GraphError, LabeledGraph
from ..obs import Stopwatch, capture, get_registry, span
from ..patterns.metrics import CoverageOracle
from ..patterns.pattern import PatternSet
from ..resilience.budget import budget_check
from ..resilience.faults import trip
from ..trees.features import FeatureSpace
from .config import MidasConfig
from .detector import Classification, ModificationDetector, ModificationType
from .pruning import PruningContext
from .small_patterns import SmallPatternTray
from .swap import MultiScanSwapper, SwapOutcome


@dataclass
class MaintenanceReport:
    """Everything measured during one ``apply_update`` round.

    **Invariant for aborted rounds:** when ``aborted`` is True the
    maintained *state* was rolled back to the pre-round snapshot, but
    the *measurements* were not — ``stopwatch`` carries the timings of
    every phase that completed before the budget signal, and
    ``degradations`` counts the fidelity fallbacks recorded up to that
    point.  Operators can therefore see where an aborted round spent
    its budget; only fields describing committed work (``swap_outcome``,
    ``inserted_ids``, ``deleted_ids``, candidate counts) are reset,
    because that work was undone.
    """

    classification: Classification
    swap_outcome: SwapOutcome | None
    stopwatch: Stopwatch
    inserted_ids: list[int] = field(default_factory=list)
    deleted_ids: list[int] = field(default_factory=list)
    candidates_generated: int = 0
    candidates_promising: int = 0
    #: Structured observability snapshot for this round: the span tree
    #: under ``midas.apply_update`` and the registry counter deltas.
    metrics: dict = field(default_factory=dict)
    #: True when the round hit a deadline/budget and was rolled back to
    #: the pre-round state; ``abort_reason`` carries the signal.
    aborted: bool = False
    abort_reason: str | None = None
    #: Number of degradation events (fidelity fallbacks, anytime
    #: truncations) recorded during this round.
    degradations: int = 0

    @property
    def is_major(self) -> bool:
        return self.classification.is_major

    @property
    def pattern_maintenance_seconds(self) -> float:
        """PMT — total wall-clock time of the maintenance round."""
        return self.stopwatch.total()

    @property
    def pattern_generation_seconds(self) -> float:
        """PGT — candidate generation plus swapping time."""
        return self.stopwatch.get("candidates") + self.stopwatch.get("swap")

    @property
    def cluster_maintenance_seconds(self) -> float:
        return self.stopwatch.get("clusters") + self.stopwatch.get("csg")

    @property
    def num_swaps(self) -> int:
        return self.swap_outcome.num_swaps if self.swap_outcome else 0


class Midas:
    """Maintains a canned pattern set as the database evolves."""

    name = "midas"

    def __init__(
        self,
        config: MidasConfig,
        database: GraphDatabase,
        state: CatapultResult,
    ) -> None:
        self.config = config
        self.database = database
        self.patterns = state.patterns
        self.fct_set = state.fct_set
        self.clusters = state.clusters
        self.csgs = state.csgs
        self.index_pair = state.index_pair
        self.sampler = state.sampler
        self.oracle = state.oracle
        self.detector = ModificationDetector(
            dict(database.items()),
            epsilon=config.epsilon,
            measure=config.distance_measure,
        )
        # Optional η ≤ 2 tray (Section 3.1 remark): maintained from exact
        # frequency counters, independent of the swap machinery.
        self.small_tray: SmallPatternTray | None = None
        if config.tray_edges > 0 or config.tray_paths > 0:
            self.small_tray = SmallPatternTray(
                dict(database.items()),
                num_edges=config.tray_edges,
                num_paths=config.tray_paths,
            )
        if self.index_pair is not None:
            self.index_pair.sync_patterns(self.patterns.graphs())

    # ------------------------------------------------------------------
    @classmethod
    def bootstrap(
        cls, database: GraphDatabase, config: MidasConfig | None = None
    ) -> "Midas":
        """Build the initial state with one CATAPULT++ run."""
        config = config or MidasConfig()
        snapshot = database.copy()
        state = CatapultPlusPlus(config).run(snapshot)
        return cls(config, snapshot, state)

    # ------------------------------------------------------------------
    # transactional machinery
    # ------------------------------------------------------------------
    #: Attributes the pre-round snapshot captures.  They are deep-copied
    #: as ONE dict so the copy memo preserves shared references (the
    #: oracle holds the same IndexPair object as ``index_pair``; copying
    #: them separately would silently un-share them on rollback).
    _STATE_ATTRS = (
        "database",
        "patterns",
        "fct_set",
        "clusters",
        "csgs",
        "index_pair",
        "sampler",
        "oracle",
        "detector",
        "small_tray",
    )

    def _snapshot_state(self) -> dict:
        return copy.deepcopy(
            {name: getattr(self, name) for name in self._STATE_ATTRS}
        )

    def _restore_state(self, snapshot: dict) -> None:
        for name, value in snapshot.items():
            setattr(self, name, value)

    def _validate_update(self, update: BatchUpdate) -> None:
        """Reject malformed batches at the boundary, before any mutation."""
        if update.is_empty():
            raise ConfigurationError(
                "empty batch update: provide at least one insertion or "
                "deletion"
            )
        seen: set[int] = set()
        for graph_id in update.deletions:
            if graph_id in seen:
                raise ConfigurationError(
                    f"duplicate deletion of graph id {graph_id} in batch"
                )
            seen.add(graph_id)
            if graph_id not in self.database:
                raise ConfigurationError(
                    f"cannot delete graph id {graph_id}: not in database"
                )
        for position, graph in enumerate(update.insertions):
            if graph.num_vertices == 0:
                raise ConfigurationError(
                    f"insertion #{position} is an empty graph"
                )
            try:
                for u, v in graph.edges():
                    graph.label(u)
                    graph.label(v)
            except GraphError as exc:
                raise ConfigurationError(
                    f"insertion #{position} has an edge referencing a "
                    f"missing vertex: {exc}"
                ) from exc

    def _aborted_report(
        self,
        exc: ResilienceError,
        registry,
        counters_before: dict,
        round_span=None,
    ) -> MaintenanceReport:
        """Report for a round that was rolled back on a budget signal.

        The round span is finalised even when the round body raises
        (``capture`` is exception-safe), so the report carries the
        partial per-phase timings — see the :class:`MaintenanceReport`
        docstring for the invariant.
        """
        degradations = registry.counter(
            "resilience.degradations"
        ).value - counters_before.get("resilience.degradations", 0)
        stopwatch = (
            Stopwatch.from_span(round_span)
            if round_span is not None
            else Stopwatch()
        )
        metrics = {"counters": registry.counter_deltas(counters_before)}
        if round_span is not None:
            metrics["spans"] = round_span.to_dict()
        return MaintenanceReport(
            classification=Classification(
                ModificationType.MINOR, 0.0, self.config.epsilon
            ),
            swap_outcome=None,
            stopwatch=stopwatch,
            aborted=True,
            abort_reason=f"{type(exc).__name__}: {exc}",
            degradations=degradations,
            metrics=metrics,
        )

    # ------------------------------------------------------------------
    # Algorithm 1
    # ------------------------------------------------------------------
    def apply_update(self, update: BatchUpdate) -> MaintenanceReport:
        """Process one batch ΔD, maintaining patterns opportunely.

        The round is transactional (``config.transactional``): the full
        maintained state is snapshotted before the database mutates, and
        any mid-round exception restores it.  A deadline/budget signal
        (:class:`ResilienceError`) yields an *aborted*
        :class:`MaintenanceReport` instead of raising; any other failure
        re-raises as :class:`RolledBack` with the cause chained — either
        way the maintainer is left exactly as it was before the call.
        """
        self._validate_update(update)
        registry = get_registry()
        counters_before = registry.counter_values()
        snapshot = None
        if self.config.transactional:
            # Out-of-core stores defer their SQL commit to the round
            # verdict (GraphStore round hooks); in-memory stores no-op
            # and roll back through the deep-copied snapshot.
            self.database.begin_round()
            snapshot = self._snapshot_state()
        execution = getattr(self.config, "execution", None) or ExecutionConfig()
        round_span = None
        try:
            with execution.apply():
                with capture("midas.apply_update") as round_span:
                    outputs = self._apply_update_inner(update)
        except ResilienceError as exc:
            if snapshot is None:
                raise
            self._restore_state(snapshot)
            self.database.rollback_round()
            registry.counter("resilience.rollbacks").add(1)
            registry.counter("resilience.aborted_rounds").add(1)
            return self._aborted_report(
                exc, registry, counters_before, round_span
            )
        except Exception as exc:
            if snapshot is None:
                raise
            self._restore_state(snapshot)
            self.database.rollback_round()
            registry.counter("resilience.rollbacks").add(1)
            raise RolledBack(
                f"maintenance round rolled back after "
                f"{type(exc).__name__}: {exc}",
                cause=exc,
            ) from exc
        if snapshot is not None:
            self.database.commit_round()
        return self._finalize_report(
            outputs, round_span, registry, counters_before
        )

    def _apply_update_inner(self, update: BatchUpdate) -> dict:
        """The round body; runs inside the round span and execution scope."""
        config = self.config
        self.clusters.reset_touched()
        self.csgs.reset_touched()

        record = self.database.apply(update)
        if caching_enabled():
            get_caches().invalidate(
                record.inserted_ids, record.deleted_ids
            )
        graphs = dict(self.database.items())
        added = {gid: graphs[gid] for gid in record.inserted_ids}
        removed_ids = set(record.deleted_ids)

        # η ≤ 2 tray maintenance: exact counter updates.
        if self.small_tray is not None:
            self.small_tray.remove_graphs(record.deleted_graphs.values())
            self.small_tray.add_graphs(added.values())

        # Lines 3-4 + 8: classify by graphlet distribution shift.
        trip("midas.detect")
        budget_check("midas.detect")
        with span("detect"):
            classification = self.detector.classify(
                added, removed_ids, commit=True
            )

        # Line 2: deletions leave clusters and CSGs.
        trip("midas.clusters")
        budget_check("midas.clusters")
        with span("clusters"):
            for graph_id in record.deleted_ids:
                cluster_id = self.clusters.remove(graph_id)
                self.csgs.detach(cluster_id, graph_id)

        # Line 5: FCT maintenance (relax, mine Δ, merge, restore).
        trip("midas.fct")
        budget_check("midas.fct")
        with span("fct"):
            self.fct_set.apply(added=added, removed=removed_ids)
            features = self.fct_set.fcts() or self.fct_set.pool()
            feature_space = FeatureSpace(features)
            self.clusters.refresh_feature_space(feature_space)

        # Lines 1 + 6-7: insertions join clusters and CSGs.
        with span("clusters"):
            assignments: dict[int, int] = {}
            for graph_id, graph in added.items():
                assignments[graph_id] = self.clusters.assign(
                    graph_id, graph, graphs
                )
        trip("midas.csg")
        budget_check("midas.csg")
        with span("csg"):
            live = set(self.clusters.cluster_ids())
            for graph_id, cluster_id in assignments.items():
                # Integrate incrementally unless a fine split dissolved
                # the target cluster; splits are reconciled below.
                if (
                    cluster_id in live
                    and cluster_id in self.csgs
                    and graph_id in self.clusters.members(cluster_id)
                ):
                    self.csgs.integrate(
                        cluster_id, graph_id, graphs[graph_id]
                    )
            # Rebuild CSGs of clusters created/destroyed by fine splits.
            self.csgs.sync_with_clusters(self.clusters, graphs)

        # Line 9 (GetIndices): the indices must reflect D ⊕ ΔD *before*
        # they back any coverage computation — a stale TG/EG column for
        # a just-inserted graph would silently exclude it from every
        # cover.
        trip("midas.index")
        budget_check("midas.index")
        if self.index_pair is not None:
            with span("index"):
                self.index_pair.apply_update(
                    self.fct_set,
                    graphs,
                    added_ids=record.inserted_ids,
                    removed_ids=removed_ids,
                    patterns=self.patterns.graphs(),
                )

        # Sample and oracle follow the database.
        trip("midas.sample")
        budget_check("midas.sample")
        with span("sample"):
            previous_ids = self.oracle.graph_ids()
            self.sampler.remove_ids(removed_ids)
            self.sampler.add_ids(record.inserted_ids)
            sample_graphs = {
                gid: graphs[gid] for gid in self.sampler.sample_ids
            }
            sample_ids = set(sample_graphs)
            if self.oracle.delta_capable:
                # Coverage-engine oracle: reconcile the view in place so
                # verdicts for unchanged sample graphs survive the round
                # and only the sample delta is ever re-verified.  The
                # batch delta flows into the engine (and its fragment
                # network, when on) here; preregistering the displayed
                # set right after lets the network unify the patterns'
                # shared fragment chains before scoring re-queries them.
                self.oracle.apply_update(
                    {
                        gid: sample_graphs[gid]
                        for gid in sample_ids - previous_ids
                    },
                    previous_ids - sample_ids,
                )
                self.oracle.preregister(self.patterns.graphs().values())
            else:
                self.oracle = CoverageOracle(
                    sample_graphs, index_pair=self.index_pair
                )

        swap_outcome: SwapOutcome | None = None
        candidates_generated = 0
        candidates_promising = 0
        if classification.is_major and len(self.patterns) > 0:
            # Lines 9-10: pruned candidate generation from evolved CSGs.
            trip("midas.candidates")
            budget_check("midas.candidates")
            with span("candidates"):
                pruning = PruningContext(
                    self.oracle,
                    [p.graph for p in self.patterns],
                    config.kappa,
                    index_pair=self.index_pair,
                )
                generator = CandidateGenerator(
                    graphs,
                    config.budget,
                    seed=config.seed,
                    num_walks=config.num_walks,
                    walk_length=config.walk_length,
                )
                evolved = self.csgs.touched | self.clusters.touched_added
                summaries = {
                    cluster_id: summary
                    for cluster_id, summary in (
                        self.csgs.summaries().items()
                    )
                    if not evolved or cluster_id in evolved
                }
                if not summaries:
                    summaries = self.csgs.summaries()
                with span("generate"):
                    raw = generator.generate(
                        summaries,
                        edge_gate=pruning.edge_gate,
                        edge_priority=pruning.edge_priority,
                    )
                candidates_generated = len(raw)
                with span("filter"):
                    promising = [
                        c.graph
                        for c in raw
                        if pruning.is_promising(c.graph)
                        and not self.patterns.has_isomorphic(c.graph)
                    ]
                candidates_promising = len(promising)
            # Line 10 continued + Section 6: multi-scan swap.
            trip("midas.swap")
            budget_check("midas.swap")
            with span("swap"):
                swap_outcome = self._run_swap(promising)

        # Line 12: reconcile the pattern-side (TP/EP) columns with the
        # possibly-swapped pattern set.
        trip("midas.index_sync")
        budget_check("midas.index_sync")
        if self.index_pair is not None:
            with span("index"):
                self.index_pair.sync_patterns(self.patterns.graphs())

        if check_enabled():
            # A violation raises out of the round body, so the
            # transactional wrapper rolls the whole round back — an
            # over-budget or out-of-band pattern set can never commit.
            check_pattern_budget(self.pattern_graphs(), config.budget)

        return {
            "classification": classification,
            "swap_outcome": swap_outcome,
            "record": record,
            "candidates_generated": candidates_generated,
            "candidates_promising": candidates_promising,
        }

    def _finalize_report(
        self, outputs: dict, round_span, registry, counters_before: dict
    ) -> MaintenanceReport:
        """Round bookkeeping that needs the *finalised* round span."""
        classification = outputs["classification"]
        swap_outcome = outputs["swap_outcome"]
        record = outputs["record"]
        candidates_generated = outputs["candidates_generated"]
        candidates_promising = outputs["candidates_promising"]
        registry.counter("midas.updates").add(1)
        if classification.is_major:
            registry.counter("midas.major_updates").add(1)
        else:
            registry.counter("midas.minor_updates").add(1)
        num_swaps = swap_outcome.num_swaps if swap_outcome else 0
        registry.counter("midas.swaps").add(num_swaps)
        registry.counter("midas.candidates_generated").add(
            candidates_generated
        )
        registry.counter("midas.candidates_promising").add(
            candidates_promising
        )
        registry.histogram("midas.update_seconds").record(round_span.seconds)
        registry.histogram("midas.batch_size").record(
            len(record.inserted_ids) + len(record.deleted_ids)
        )

        degradations = registry.counter(
            "resilience.degradations"
        ).value - counters_before.get("resilience.degradations", 0)
        return MaintenanceReport(
            classification=classification,
            swap_outcome=swap_outcome,
            stopwatch=Stopwatch.from_span(round_span),
            inserted_ids=list(record.inserted_ids),
            deleted_ids=list(record.deleted_ids),
            candidates_generated=candidates_generated,
            candidates_promising=candidates_promising,
            degradations=degradations,
            metrics={
                "spans": round_span.to_dict(),
                "counters": registry.counter_deltas(counters_before),
            },
        )

    # ------------------------------------------------------------------
    def _run_swap(self, promising: list[LabeledGraph]) -> SwapOutcome:
        """The pattern-update strategy; subclasses may override
        (e.g. the Random baseline replaces it with random swapping)."""
        config = self.config
        swapper = MultiScanSwapper(
            self.oracle,
            kappa=config.kappa,
            lambda_=config.lambda_,
            ged_method=config.ged_method,
            ks_alpha=config.ks_alpha,
            max_scans=config.max_scans,
            adaptive_kappa=config.adaptive_kappa,
            sigma_initial=config.sigma_initial,
        )
        return swapper.run(self.patterns, promising, provenance=self.name)

    # ------------------------------------------------------------------
    def pattern_graphs(self) -> list[LabeledGraph]:
        return [p.graph for p in self.patterns]

    def pattern_set(self) -> PatternSet:
        return self.patterns
