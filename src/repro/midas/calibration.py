"""Calibrating the evolution ratio threshold ε.

The paper fixes ε = 0.1 for its datasets (Exp 1); the right value is
dataset-dependent because the GFD's sensitivity scales with database
size and motif homogeneity (this reproduction's synthetic molecules need
ε ≈ 0.002).  Rather than hand-tuning, :func:`recommend_epsilon`
calibrates ε empirically:

1. simulate many *routine* batches — random insertions/deletions of the
   expected periodic size, drawn from the database's own graphs — and
   record their GFD distances;
2. return a high percentile of that null distribution.

Batches of routine churn then classify as minor, while anything that
shifts topology more than routine churn ever does (a new compound
family, densification) classifies as major.  This is a standard
null-distribution threshold construction layered on the paper's
detector; the sweep benchmark (E-FIG11) shows behaviour is flat around
the recommendation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..graph.database import GraphDatabase
from ..graphlets.distribution import (
    GraphletDistribution,
    distribution_distance,
)
from ..utils.stats import percentile


@dataclass(frozen=True)
class EpsilonRecommendation:
    """The calibration outcome."""

    epsilon: float
    null_distances: tuple[float, ...]
    batch_fraction: float
    trials: int

    @property
    def null_max(self) -> float:
        return max(self.null_distances) if self.null_distances else 0.0


def _null_distance(
    database: GraphDatabase,
    distribution: GraphletDistribution,
    batch_fraction: float,
    rng: random.Random,
    measure: str,
) -> float:
    """GFD distance of one simulated routine batch (resampled churn)."""
    ids = database.ids()
    batch_size = max(1, int(round(len(ids) * batch_fraction)))
    removed = set(rng.sample(ids, min(batch_size, len(ids) - 1)))
    # Routine insertions are modelled by resampling existing graphs —
    # "more of the same" content, the definition of a minor batch.
    inserted_sources = [rng.choice(ids) for _ in range(batch_size)]
    after = distribution.copy()
    for graph_id in removed:
        after.remove(graph_id)
    for offset, source in enumerate(inserted_sources):
        after.add(10_000_000 + offset, database[source])
    return distribution_distance(
        distribution.frequencies(), after.frequencies(), measure=measure
    )


def recommend_epsilon(
    database: GraphDatabase,
    batch_fraction: float = 0.1,
    trials: int = 50,
    q: float = 95.0,
    measure: str = "euclidean",
    seed: int = 0,
) -> EpsilonRecommendation:
    """Recommend ε as the *q*-th percentile of routine-churn distances.

    Parameters
    ----------
    batch_fraction:
        Expected periodic batch size relative to |D| (e.g. 0.1 for
        ±10 % updates).
    trials:
        Number of simulated routine batches.
    q:
        Percentile of the null distribution used as the threshold;
        95 gives a ~5 % false-major rate on routine churn.
    """
    if len(database) < 2:
        raise ValueError("calibration needs at least 2 graphs")
    if not 0.0 < batch_fraction <= 1.0:
        raise ValueError("batch_fraction must be in (0, 1]")
    if trials < 1:
        raise ValueError("trials must be positive")
    rng = random.Random(seed)
    distribution = GraphletDistribution(dict(database.items()))
    distances = tuple(
        _null_distance(database, distribution, batch_fraction, rng, measure)
        for _ in range(trials)
    )
    return EpsilonRecommendation(
        epsilon=float(percentile(list(distances), q)),
        null_distances=distances,
        batch_fraction=batch_fraction,
        trials=trials,
    )
