"""MIDAS configuration.

Extends the CATAPULT configuration with the maintenance-specific knobs of
the paper (Section 7.1 parameter settings): the evolution ratio threshold
ε, the swapping thresholds κ and λ (the paper sets λ = κ), the GFD
distance measure, and the KS-test significance level.

Note on ε scale: the paper's default ε = 0.1 is calibrated to its
datasets.  The synthetic databases here are smaller and their GFDs
correspondingly more stable, so the default ε is scaled down; benchmark
E-FIG11 sweeps it exactly as Exp 1 does.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..catapult.pipeline import CatapultConfig


@dataclass(kw_only=True)
class MidasConfig(CatapultConfig):
    """All knobs of the MIDAS maintainer (keyword-only, like its base)."""

    #: Evolution ratio threshold ε: GFD distance at or above it marks a
    #: major (Type 1) modification.
    epsilon: float = 0.002
    #: Swapping threshold κ (Equation 2 and sw1).
    kappa: float = 0.1
    #: Swapping threshold λ (sw2); the paper sets λ = κ.
    lambda_: float = 0.1
    #: GFD distance measure (see repro.graphlets.DISTANCE_MEASURES).
    distance_measure: str = "euclidean"
    #: GED method for diversity (MIDAS uses the tighter GED'_l).
    ged_method: str = "tight_lower"
    #: Significance level of the pattern-size-distribution KS test.
    ks_alpha: float = 0.05
    #: Maximum number of swap scans per maintenance round.
    max_scans: int = 3
    #: Use the adaptive κ_t schedule of Lemma 6.3 instead of fixed κ.
    adaptive_kappa: bool = False
    #: Initial approximation-ratio lower bound σ_0 for the schedule.
    sigma_initial: float = 0.25
    #: Size of the small-pattern tray (η ≤ 2, Section 3.1 remark);
    #: 0 disables the tray entirely.
    tray_edges: int = 0
    #: Number of 2-edge path patterns in the small-pattern tray.
    tray_paths: int = 0
    #: Run each ``apply_update`` transactionally: snapshot the maintained
    #: state up front and roll back on any mid-round failure.  Costs one
    #: deep copy of the state per round; disable for throughput runs
    #: where a crashed round may leave the maintainer inconsistent.
    transactional: bool = True

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        if not 0.0 <= self.kappa <= 1.0:
            raise ValueError("kappa must be in [0, 1]")
        if self.lambda_ < 0:
            raise ValueError("lambda_ must be non-negative")
        if not 0.0 < self.ks_alpha < 1.0:
            raise ValueError("ks_alpha must be in (0, 1)")
        if self.max_scans < 1:
            raise ValueError("max_scans must be positive")
        if self.tray_edges < 0 or self.tray_paths < 0:
            raise ValueError("tray sizes must be non-negative")


@dataclass
class MaintenanceThresholds:
    """The runtime thresholds a single maintenance round operates with."""

    epsilon: float = 0.002
    kappa: float = 0.1
    lambda_: float = 0.1

    @classmethod
    def from_config(cls, config: MidasConfig) -> "MaintenanceThresholds":
        return cls(
            epsilon=config.epsilon,
            kappa=config.kappa,
            lambda_=config.lambda_,
        )


__all__ = ["MaintenanceThresholds", "MidasConfig"]
