"""Swap-based pattern maintenance: the multi-scan swap of Section 6.2.

Given the existing canned patterns ``P`` and the promising final
candidate patterns, MIDAS ranks candidates by decreasing modified pattern
score ``s'`` and existing patterns by increasing ``s'``, then repeatedly
considers swapping the worst displayed pattern for the best remaining
candidate.  A swap happens only when **all** criteria hold:

* **sw1** — benefit ≥ (1 + κ) × loss (marginal set coverage);
* **sw2** — ``s'(candidate) ≥ (1 + λ) s'(pattern)``;
* **sw3** — set diversity does not drop;
* **sw4** — set cognitive load does not rise;
* **sw5** — set label coverage does not drop;
* the pattern-size distributions before/after are KS-similar.

A scan terminates when sw2 fails (candidates are sorted, so no later
candidate can pass either) or candidates run out; scans repeat — with κ
optionally following the SWAP_α schedule of Lemma 6.3 — until a scan
performs no swap or the scan budget is exhausted.  Together the criteria
guarantee the progressive-gain property: coverage strictly improves
while diversity, cognitive load and label coverage never regress.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..exceptions import ResilienceError
from ..graph.canonical import canonical_certificate
from ..graph.labeled_graph import LabeledGraph
from ..obs import get_registry
from ..parallel.kernels import ged_pairs_kernel
from ..parallel.pool import current_pool
from ..resilience.budget import current_budget
from ..resilience.degrade import (
    anytime_degradation,
    degradation_enabled,
    resilient_ged,
)
from ..patterns.metrics import (
    CoverageOracle,
    cognitive_load,
)
from ..patterns.pattern import PatternSet
from ..utils.stats import ks_similarity


def kappa_schedule(sigma_previous: float) -> tuple[float, float]:
    """One step of the SWAP_α schedule (Lemma 6.3).

    Given the previous scan's approximation-ratio lower bound σ_{t−1},
    returns ``(κ_t, σ_t)`` with ``κ_t = 1 − 2σ_{t−1}`` and
    ``σ_t = 0.25 / (1 − σ_{t−1})``.  Once σ reaches 0.5 the schedule is
    a fixed point (κ = 0).
    """
    if sigma_previous >= 0.5:
        return 0.0, 0.5
    kappa = 1.0 - 2.0 * sigma_previous
    sigma = 0.25 / (1.0 - sigma_previous)
    return kappa, sigma


@dataclass
class SwapRecord:
    """One executed swap."""

    removed_id: int
    removed_graph: LabeledGraph
    added_id: int
    added_graph: LabeledGraph
    scan: int


@dataclass
class SwapOutcome:
    """Result of a full multi-scan run."""

    swaps: list[SwapRecord] = field(default_factory=list)
    scans: int = 0
    candidates_considered: int = 0
    rejected_sw1: int = 0
    rejected_quality: int = 0
    terminated_by_sw2: bool = False
    # Degraded-mode bookkeeping: the scan loop stopped early on a budget
    # (truncated) and/or some pairwise distances fell down the GED
    # fidelity ladder instead of using the requested method.
    truncated: bool = False
    degraded_distances: int = 0

    @property
    def num_swaps(self) -> int:
        return len(self.swaps)

    @property
    def degraded(self) -> bool:
        return self.truncated or self.degraded_distances > 0


class MultiScanSwapper:
    """Executes the multi-scan swap against a live :class:`PatternSet`."""

    def __init__(
        self,
        oracle: CoverageOracle,
        kappa: float = 0.1,
        lambda_: float = 0.1,
        ged_method: str = "tight_lower",
        ks_alpha: float = 0.05,
        max_scans: int = 3,
        adaptive_kappa: bool = False,
        sigma_initial: float = 0.25,
    ) -> None:
        self.oracle = oracle
        self.kappa = kappa
        self.lambda_ = lambda_
        self.ged_method = ged_method
        self.ks_alpha = ks_alpha
        self.max_scans = max_scans
        self.adaptive_kappa = adaptive_kappa
        self.sigma_initial = sigma_initial
        # Swap evaluation is O(γ³) pairwise GEDs per candidate; memoise
        # both the canonical keys (by object id) and pairwise distances.
        # The cache holds a strong reference to each graph so a recycled
        # object id can never alias a stale key.
        self._key_cache: dict[int, tuple[LabeledGraph, tuple]] = {}
        self._ged_cache: dict[tuple, float] = {}
        self._degraded_distances = 0

    # ------------------------------------------------------------------
    # scores and set-level quality
    # ------------------------------------------------------------------
    def _canonical(self, pattern: LabeledGraph) -> tuple:
        entry = self._key_cache.get(id(pattern))
        if entry is None or entry[0] is not pattern:
            entry = (pattern, canonical_certificate(pattern))
            self._key_cache[id(pattern)] = entry
        return entry[1]

    def _distance(self, first: LabeledGraph, second: LabeledGraph) -> float:
        pair = tuple(sorted((self._canonical(first), self._canonical(second))))
        cached = self._ged_cache.get(pair)
        if cached is None:
            get_registry().counter("swap.ged_cache_misses").add(1)
            result = resilient_ged(first, second, method=self.ged_method)
            cached = float(result.value)
            if result.degraded:
                # Don't cache a degraded value: a later call with budget
                # headroom should get the full-fidelity distance.
                self._degraded_distances += 1
            else:
                self._ged_cache[pair] = cached
        else:
            get_registry().counter("swap.ged_cache_hits").add(1)
        return cached

    def _diversity(
        self, pattern: LabeledGraph, others: list[LabeledGraph]
    ) -> float:
        if not others:
            return float(pattern.num_edges + pattern.num_vertices)
        return min(self._distance(pattern, other) for other in others)

    def _score(
        self, pattern: LabeledGraph, others: list[LabeledGraph]
    ) -> float:
        load = cognitive_load(pattern)
        if load <= 0:
            return 0.0
        return (
            self.oracle.scov(pattern)
            * self.oracle.lcov(pattern)
            * self._diversity(pattern, others)
            / load
        )

    def _set_quality(
        self, patterns: list[LabeledGraph]
    ) -> tuple[float, float, float]:
        """(f_div, f_cog, f_lcov) of a prospective pattern set."""
        if not patterns:
            return 0.0, 0.0, 0.0
        divs = []
        for i, pattern in enumerate(patterns):
            others = patterns[:i] + patterns[i + 1 :]
            if others:
                divs.append(self._diversity(pattern, others))
        f_div = min(divs) if divs else 0.0
        f_cog = max(cognitive_load(p) for p in patterns)
        f_lcov = self.oracle.set_lcov(patterns)
        return f_div, f_cog, f_lcov

    # ------------------------------------------------------------------
    def _prewarm_distances(
        self,
        pattern_set: PatternSet,
        candidates: list[LabeledGraph],
    ) -> None:
        """Batch-fill the pairwise GED memo through the ambient pool.

        Swap scans evaluate (almost) every pairwise distance among the
        patterns and candidates; computing them up front lets the pool
        fan the matrix out across workers.  Only full-fidelity values
        are stored — a pair that degraded inside a worker is left for
        the lazy path to recompute (and count) exactly as the serial
        scan would, so outcomes are byte-identical either way.
        """
        graphs = [p.graph for p in pattern_set] + list(candidates)
        unique: dict[tuple, LabeledGraph] = {}
        for graph in graphs:
            unique.setdefault(self._canonical(graph), graph)
        keys = sorted(unique)
        pairs = [
            (keys[i], keys[j])
            for i in range(len(keys))
            for j in range(i + 1, len(keys))
            if (keys[i], keys[j]) not in self._ged_cache
        ]
        pool = current_pool()
        if not pool.worth_parallelizing(len(pairs)):
            return
        items = [(unique[a], unique[b]) for a, b in pairs]
        results = pool.map(ged_pairs_kernel, items, payload=self.ged_method)
        for pair, (value, fidelity) in zip(pairs, results):
            if fidelity == self.ged_method:
                self._ged_cache[pair] = float(value)

    # ------------------------------------------------------------------
    def _swap_allowed(
        self,
        pattern_set: PatternSet,
        victim_id: int,
        candidate: LabeledGraph,
        kappa: float,
        outcome: SwapOutcome,
    ) -> tuple[bool, bool]:
        """Evaluate sw1–sw5 + KS.  Returns (allowed, sw2_failed)."""
        victim = pattern_set.get(victim_id).graph
        current = [p.graph for p in pattern_set]
        others = [
            p.graph for p in pattern_set if p.pattern_id != victim_id
        ]
        prospective = others + [candidate]

        # sw2 first: it also terminates the scan.
        score_victim = self._score(victim, others)
        score_candidate = self._score(candidate, others)
        if score_candidate < (1.0 + self.lambda_) * score_victim:
            return False, True

        # sw1: benefit vs loss on marginal set coverage.
        benefit = self.oracle.benefit_score(candidate, current)
        loss = self.oracle.loss_score(victim, others)
        if benefit < (1.0 + kappa) * loss:
            outcome.rejected_sw1 += 1
            return False, False

        # Size distribution similarity (KS test).
        before_sizes = [p.num_edges for p in current]
        after_sizes = [p.num_edges for p in prospective]
        if not ks_similarity(before_sizes, after_sizes, self.ks_alpha):
            outcome.rejected_quality += 1
            return False, False

        # sw3–sw5: set-level quality must not regress.
        div_before, cog_before, lcov_before = self._set_quality(current)
        div_after, cog_after, lcov_after = self._set_quality(prospective)
        if div_after < div_before:
            outcome.rejected_quality += 1
            return False, False
        if cog_after > cog_before:
            outcome.rejected_quality += 1
            return False, False
        if lcov_after < lcov_before:
            outcome.rejected_quality += 1
            return False, False
        return True, False

    # ------------------------------------------------------------------
    def run(
        self,
        pattern_set: PatternSet,
        candidates: list[LabeledGraph],
        provenance: str = "midas",
    ) -> SwapOutcome:
        """Run up to ``max_scans`` scans, mutating *pattern_set* in place.

        The scan loop is *anytime*: every executed swap satisfied sw1–sw5
        when it happened, so if the ambient budget expires mid-run the
        swaps so far stand and the outcome is marked ``truncated``.
        """
        outcome = SwapOutcome()
        self._degraded_distances = 0
        if not candidates or len(pattern_set) == 0:
            return outcome
        self._prewarm_distances(pattern_set, candidates)
        ambient = current_budget()
        sigma = self.sigma_initial
        remaining = list(candidates)
        try:
            outcome = self._run_scans(
                pattern_set, remaining, provenance, outcome, sigma, ambient
            )
        except ResilienceError:
            if not degradation_enabled():
                raise
            outcome.truncated = True
            anytime_degradation("midas.swap")
        outcome.degraded_distances = self._degraded_distances
        registry = get_registry()
        registry.counter("swap.scans").add(outcome.scans)
        registry.counter("swap.candidates_considered").add(
            outcome.candidates_considered
        )
        registry.counter("swap.swaps").add(outcome.num_swaps)
        return outcome

    def _run_scans(
        self,
        pattern_set: PatternSet,
        remaining: list[LabeledGraph],
        provenance: str,
        outcome: SwapOutcome,
        sigma: float,
        ambient,
    ) -> SwapOutcome:
        for scan in range(1, self.max_scans + 1):
            if ambient is not None:
                ambient.check("midas.swap")
            if self.adaptive_kappa:
                kappa, sigma = kappa_schedule(sigma)
            else:
                kappa = self.kappa
            outcome.scans = scan
            # Candidates in decreasing s', patterns in increasing s'.
            pattern_graphs = [p.graph for p in pattern_set]
            remaining.sort(
                key=lambda c: -self._score(c, pattern_graphs)
            )
            swapped_this_scan = False
            terminated = False
            queue = list(remaining)
            for candidate in queue:
                if len(pattern_set) == 0 or terminated:
                    break
                if pattern_set.has_isomorphic(candidate):
                    remaining.remove(candidate)
                    continue
                outcome.candidates_considered += 1
                # Victims in increasing s' (the pattern priority queue);
                # a candidate may skip a protected low-score victim and
                # still swap out the next one.
                victims = sorted(
                    pattern_set.ids(),
                    key=lambda pid: self._score(
                        pattern_set.get(pid).graph,
                        [
                            p.graph
                            for p in pattern_set
                            if p.pattern_id != pid
                        ],
                    ),
                )
                for position, victim_id in enumerate(victims):
                    allowed, sw2_failed = self._swap_allowed(
                        pattern_set, victim_id, candidate, kappa, outcome
                    )
                    if sw2_failed:
                        # Candidates are sorted by decreasing s', so once
                        # the best remaining candidate cannot beat even
                        # the weakest pattern the whole scan is done
                        # (sw2 against later victims only gets harder).
                        if position == 0:
                            outcome.terminated_by_sw2 = True
                            terminated = True
                        break
                    if not allowed:
                        continue
                    removed = pattern_set.get(victim_id)
                    added = pattern_set.swap(
                        victim_id, candidate, provenance=provenance
                    )
                    outcome.swaps.append(
                        SwapRecord(
                            removed_id=victim_id,
                            removed_graph=removed.graph,
                            added_id=added.pattern_id,
                            added_graph=added.graph,
                            scan=scan,
                        )
                    )
                    remaining.remove(candidate)
                    swapped_this_scan = True
                    break
            if not swapped_this_scan or terminated:
                break
        return outcome
