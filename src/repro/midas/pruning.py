"""Coverage-based candidate pruning (Section 5.2).

MIDAS exploits its knowledge of the existing pattern set ``P`` to prune
unpromising candidates early:

* **Promising FCP** (Definition 5.5): a candidate is promising when its
  marginal subgraph coverage beats ``(1 + κ)`` times the *smallest*
  unique coverage of any displayed pattern — otherwise no swap it could
  participate in would satisfy sw1.
* **Early termination** (Equation 2): while a candidate is being grown
  edge by edge, an edge whose own marginal coverage is already below the
  same bound cannot rescue the candidate (coverage is anti-monotone in
  pattern growth), so generation stops — this is the ``edge_gate``
  consumed by :mod:`repro.catapult.candidate`.

Edge-level covers come from the FCT-/IFE-indices when available (frequent
edges via the TG-matrix, infrequent via the EG-matrix) and from a direct
edge-label scan of the oracle's sample otherwise.
"""

from __future__ import annotations

from collections.abc import Iterable

from ..graph.labeled_graph import EdgeLabel, LabeledGraph
from ..index.maintenance import IndexPair
from ..patterns.metrics import CoverageOracle


class PruningContext:
    """Precomputed covers shared by the gate and the promising-FCP test."""

    def __init__(
        self,
        oracle: CoverageOracle,
        patterns: Iterable[LabeledGraph],
        kappa: float,
        index_pair: IndexPair | None = None,
    ) -> None:
        if not 0.0 <= kappa <= 1.0:
            raise ValueError("kappa must be in [0, 1]")
        self.oracle = oracle
        self.kappa = kappa
        self._index_pair = index_pair
        self._patterns = list(patterns)
        self._union_cover = oracle.union_cover(self._patterns)
        self._min_unique = self._minimum_unique_cover()
        self._edge_cover_cache: dict[EdgeLabel, frozenset[int]] = {}

    # ------------------------------------------------------------------
    def _minimum_unique_cover(self) -> int:
        """``min_p |G_scov(p) ∖ ⋃_{p'≠p} G_scov(p')|`` over displayed P."""
        if not self._patterns:
            return 0
        smallest = None
        for i, pattern in enumerate(self._patterns):
            others = self._patterns[:i] + self._patterns[i + 1 :]
            unique = len(self.oracle.unique_cover(pattern, others))
            if smallest is None or unique < smallest:
                smallest = unique
            if smallest == 0:
                break
        return smallest or 0

    @property
    def threshold(self) -> float:
        """``(1 + κ) × min_p |unique cover|`` — the Equation 2 bound.

        Floored at 1: when some displayed pattern has zero unique
        coverage the raw bound degenerates to 0 and every candidate —
        including ones covering nothing new — would count as promising.
        Requiring at least one uncovered graph keeps swaps meaningful
        (a swap with zero benefit and zero loss is wasted work).
        """
        return max((1.0 + self.kappa) * self._min_unique, 1.0)

    # ------------------------------------------------------------------
    def edge_cover(self, label: EdgeLabel) -> frozenset[int]:
        """``G_scov(e)`` restricted to the oracle's sample."""
        cached = self._edge_cover_cache.get(label)
        if cached is not None:
            return cached
        cover: set[int] | None = None
        if self._index_pair is not None:
            indexed = self._index_pair.graphs_covering_edge(label)
            if indexed is not None:
                cover = indexed & self.oracle.graph_ids()
        if cover is None:
            cover = self.oracle.graphs_with_edge_label(label)
        result = frozenset(cover)
        self._edge_cover_cache[label] = result
        return result

    def edge_gate(self, label: EdgeLabel) -> bool:
        """Equation 2: admit the edge unless its marginal cover is low."""
        marginal = len(self.edge_cover(label) - self._union_cover)
        return marginal >= self.threshold

    def edge_priority(self, label: EdgeLabel) -> float:
        """How specific an edge is to the *uncovered* part of the sample.

        ``|G_scov(e) ∖ ⋃ G_scov(P)| / |G_scov(e)|`` ∈ [0, 1]: 1 means the
        edge only occurs in graphs the displayed patterns miss (e.g. a
        newly arrived family's functional group), 0 means it adds
        nothing.  Section 5.2 motivates coverage-based pruning as a way
        to *guide the FCP generation process towards candidates with
        greater potential of replacing existing patterns* — this is the
        guidance signal: the candidate generator biases walk seeds and
        growth toward high-priority edges, complementing the hard gate.
        """
        cover = self.edge_cover(label)
        if not cover:
            return 0.0
        marginal = len(cover - self._union_cover)
        return marginal / len(cover)

    # ------------------------------------------------------------------
    def is_promising(self, candidate: LabeledGraph) -> bool:
        """Definition 5.5: candidate's marginal cover beats the bound."""
        marginal = len(self.oracle.cover(candidate) - self._union_cover)
        return marginal >= self.threshold
