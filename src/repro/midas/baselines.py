"""Baselines for the experimental comparison (Section 7.1).

* :class:`RandomSwapMaintainer` — identical plumbing to MIDAS but the
  multi-scan swap is replaced by *random* swapping: candidates replace
  uniformly-chosen displayed patterns with no quality criteria ("Random"
  in the paper's figures).
* :class:`NoMaintainBaseline` — the pattern set selected at bootstrap is
  never touched ("NoMaintain"); only the database snapshot advances.
* :func:`from_scratch` — maintenance-from-scratch: re-run CATAPULT or
  CATAPULT++ on ``D ⊕ ΔD`` and take the fresh pattern set.
"""

from __future__ import annotations

import random

from ..catapult.pipeline import Catapult, CatapultConfig, CatapultPlusPlus
from ..graph.database import BatchUpdate, GraphDatabase
from ..graph.labeled_graph import LabeledGraph
from ..patterns.pattern import PatternSet
from ..utils.timing import Stopwatch
from .config import MidasConfig
from .maintainer import MaintenanceReport, Midas
from .swap import SwapOutcome, SwapRecord


class RandomSwapMaintainer(Midas):
    """MIDAS with the multi-scan swap replaced by random swapping."""

    name = "random"

    def _run_swap(self, promising: list[LabeledGraph]) -> SwapOutcome:
        outcome = SwapOutcome()
        if not promising or len(self.patterns) == 0:
            return outcome
        rng = random.Random(self.config.seed * 31 + len(promising))
        candidates = list(promising)
        rng.shuffle(candidates)
        # Swap as many candidates as half the display, unconditionally.
        budget = max(1, len(self.patterns) // 2)
        outcome.scans = 1
        for candidate in candidates[:budget]:
            if self.patterns.has_isomorphic(candidate):
                continue
            outcome.candidates_considered += 1
            victim_id = rng.choice(self.patterns.ids())
            removed = self.patterns.get(victim_id)
            added = self.patterns.swap(
                victim_id, candidate, provenance=self.name
            )
            outcome.swaps.append(
                SwapRecord(
                    removed_id=victim_id,
                    removed_graph=removed.graph,
                    added_id=added.pattern_id,
                    added_graph=added.graph,
                    scan=1,
                )
            )
        return outcome


class NoMaintainBaseline:
    """A static GUI: the initial pattern set is never refreshed."""

    name = "nomaintain"

    def __init__(
        self, config: MidasConfig, database: GraphDatabase, patterns: PatternSet
    ) -> None:
        self.config = config
        self.database = database
        self.patterns = patterns

    @classmethod
    def bootstrap(
        cls, database: GraphDatabase, config: MidasConfig | None = None
    ) -> "NoMaintainBaseline":
        config = config or MidasConfig()
        snapshot = database.copy()
        state = CatapultPlusPlus(config).run(snapshot)
        return cls(config, snapshot, state.patterns)

    def apply_update(self, update: BatchUpdate) -> Stopwatch:
        """Advance the database; the patterns stay stale by design."""
        stopwatch = Stopwatch()
        with stopwatch.measure("database"):
            self.database.apply(update)
        return stopwatch

    def pattern_graphs(self) -> list[LabeledGraph]:
        return [p.graph for p in self.patterns]


def from_scratch(
    database: GraphDatabase,
    update: BatchUpdate,
    config: CatapultConfig | None = None,
    plus_plus: bool = False,
) -> tuple[PatternSet, Stopwatch, GraphDatabase]:
    """Maintenance-from-scratch baseline.

    Applies ΔD and re-runs the full selection pipeline on the updated
    database.  Returns the fresh pattern set, the pipeline stopwatch
    (its total is the from-scratch "maintenance" time the speedup plots
    compare against) and the updated database.
    """
    config = config or CatapultConfig()
    updated = database.updated(update)
    pipeline = CatapultPlusPlus(config) if plus_plus else Catapult(config)
    result = pipeline.run(updated)
    return result.patterns, result.stopwatch, updated


def maintenance_report_summary(report: MaintenanceReport) -> dict[str, float]:
    """Flatten a report into the metrics the benchmark tables print."""
    return {
        "pmt_seconds": report.pattern_maintenance_seconds,
        "pgt_seconds": report.pattern_generation_seconds,
        "cluster_seconds": report.cluster_maintenance_seconds,
        "distance": report.classification.distance,
        "major": float(report.is_major),
        "swaps": float(report.num_swaps),
        "candidates": float(report.candidates_generated),
        "promising": float(report.candidates_promising),
    }
