"""MIDAS: selective, swap-based maintenance of canned patterns."""

from .calibration import EpsilonRecommendation, recommend_epsilon
from .baselines import (
    NoMaintainBaseline,
    RandomSwapMaintainer,
    from_scratch,
    maintenance_report_summary,
)
from .config import MaintenanceThresholds, MidasConfig
from .detector import Classification, ModificationDetector, ModificationType
from .history import HistoryEntry, MaintenanceHistory
from .maintainer import MaintenanceReport, Midas
from .pruning import PruningContext
from .query_log import LogWeightedSwapper, QueryLog
from .small_patterns import SmallPatternTray
from .swap import MultiScanSwapper, SwapOutcome, SwapRecord, kappa_schedule

__all__ = [
    "Classification",
    "EpsilonRecommendation",
    "HistoryEntry",
    "MaintenanceHistory",
    "MaintenanceReport",
    "MaintenanceThresholds",
    "Midas",
    "MidasConfig",
    "ModificationDetector",
    "ModificationType",
    "MultiScanSwapper",
    "NoMaintainBaseline",
    "LogWeightedSwapper",
    "PruningContext",
    "QueryLog",
    "SmallPatternTray",
    "RandomSwapMaintainer",
    "SwapOutcome",
    "SwapRecord",
    "from_scratch",
    "kappa_schedule",
    "recommend_epsilon",
    "maintenance_report_summary",
]
