"""Maintenance history: longitudinal bookkeeping across rounds.

Deployments run MIDAS for months (the paper's motivation is daily batch
arrivals); :class:`MaintenanceHistory` accumulates the per-round
:class:`~repro.midas.maintainer.MaintenanceReport` objects together with
quality snapshots, and answers the questions an operator asks: how often
were batches major, how much time does maintenance cost, is quality
drifting, which rounds swapped patterns.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..utils.stats import mean
from .maintainer import MaintenanceReport


@dataclass
class HistoryEntry:
    """One maintenance round's record."""

    round_number: int
    label: str
    report: MaintenanceReport
    quality: dict[str, float] = field(default_factory=dict)
    database_size: int = 0


class MaintenanceHistory:
    """Accumulates rounds and summarises maintenance behaviour."""

    def __init__(self) -> None:
        self._entries: list[HistoryEntry] = []

    def record(
        self,
        report: MaintenanceReport,
        label: str = "",
        quality: dict[str, float] | None = None,
        database_size: int = 0,
    ) -> HistoryEntry:
        entry = HistoryEntry(
            round_number=len(self._entries),
            label=label or f"round {len(self._entries)}",
            report=report,
            quality=dict(quality or {}),
            database_size=database_size,
        )
        self._entries.append(entry)
        return entry

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> list[HistoryEntry]:
        return list(self._entries)

    def major_rounds(self) -> list[HistoryEntry]:
        return [e for e in self._entries if e.report.is_major]

    @property
    def major_fraction(self) -> float:
        if not self._entries:
            return 0.0
        return len(self.major_rounds()) / len(self._entries)

    @property
    def total_swaps(self) -> int:
        return sum(e.report.num_swaps for e in self._entries)

    @property
    def total_maintenance_seconds(self) -> float:
        return sum(
            e.report.pattern_maintenance_seconds for e in self._entries
        )

    def average_pmt(self) -> float:
        return mean(
            [e.report.pattern_maintenance_seconds for e in self._entries]
        )

    def quality_series(self, measure: str) -> list[float]:
        """The per-round values of one quality measure (gaps skipped)."""
        return [
            e.quality[measure]
            for e in self._entries
            if measure in e.quality
        ]

    def quality_trend(self, measure: str) -> float:
        """Last-minus-first value of a measure (positive = improving)."""
        series = self.quality_series(measure)
        if len(series) < 2:
            return 0.0
        return series[-1] - series[0]

    def summary(self) -> dict[str, float]:
        return {
            "rounds": float(len(self._entries)),
            "major_fraction": self.major_fraction,
            "total_swaps": float(self.total_swaps),
            "avg_pmt_seconds": self.average_pmt(),
            "total_pmt_seconds": self.total_maintenance_seconds,
        }
