"""Maintenance of small canned patterns (η ≤ 2).

The main CPM machinery targets patterns with ``η_min > 2``; the paper
notes (Section 3.1 remark) that maintaining the *small* patterns —
single edges and 2-edge paths shown in a separate GUI tray — is
straightforward, and defers it to the technical report.  The reason is
that small patterns have no interesting structure: their value is purely
their frequency, so the optimal tray is simply the top-k most frequent
edge labels / 2-path label triples, both of which are maintainable from
exact counters.

:class:`SmallPatternTray` keeps those counters incrementally:

* per edge label, the number of graphs containing it (document
  frequency) — updated in O(|ΔD| · |E|);
* per 2-path label triple (centre label, sorted end labels), likewise.

``refresh`` then materialises the current top-k of each kind.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from ..graph.labeled_graph import EdgeLabel, LabeledGraph

PathLabel = tuple[str, tuple[str, str]]  # (centre label, sorted end labels)


def _two_path_labels(graph: LabeledGraph) -> set[PathLabel]:
    """Distinct 2-path label triples present in *graph*."""
    found: set[PathLabel] = set()
    for center in graph.vertices():
        neighbors = sorted(graph.neighbors(center), key=repr)
        center_label = graph.label(center)
        for i, u in enumerate(neighbors):
            for v in neighbors[i + 1 :]:
                ends = tuple(sorted((graph.label(u), graph.label(v))))
                found.add((center_label, ends))
    return found


class SmallPatternTray:
    """Top-k frequent 1-edge and 2-edge patterns, exactly maintained."""

    def __init__(
        self,
        graphs: Mapping[int, LabeledGraph],
        num_edges: int = 5,
        num_paths: int = 5,
    ) -> None:
        if num_edges < 0 or num_paths < 0:
            raise ValueError("tray sizes must be non-negative")
        self.num_edges = num_edges
        self.num_paths = num_paths
        self._edge_frequency: dict[EdgeLabel, int] = {}
        self._path_frequency: dict[PathLabel, int] = {}
        self._db_size = 0
        for graph in graphs.values():
            self._count(graph, +1)
            self._db_size += 1

    # ------------------------------------------------------------------
    def _count(self, graph: LabeledGraph, delta: int) -> None:
        for label in graph.edge_label_set():
            updated = self._edge_frequency.get(label, 0) + delta
            if updated > 0:
                self._edge_frequency[label] = updated
            else:
                self._edge_frequency.pop(label, None)
        for label in _two_path_labels(graph):
            updated = self._path_frequency.get(label, 0) + delta
            if updated > 0:
                self._path_frequency[label] = updated
            else:
                self._path_frequency.pop(label, None)

    def add_graphs(self, graphs: Iterable[LabeledGraph]) -> None:
        for graph in graphs:
            self._count(graph, +1)
            self._db_size += 1

    def remove_graphs(self, graphs: Iterable[LabeledGraph]) -> None:
        for graph in graphs:
            self._count(graph, -1)
            self._db_size -= 1

    # ------------------------------------------------------------------
    @property
    def db_size(self) -> int:
        return self._db_size

    def edge_frequency(self, label: EdgeLabel) -> int:
        return self._edge_frequency.get(label, 0)

    def path_frequency(self, label: PathLabel) -> int:
        return self._path_frequency.get(label, 0)

    def top_edges(self) -> list[tuple[EdgeLabel, int]]:
        ranked = sorted(
            self._edge_frequency.items(), key=lambda kv: (-kv[1], kv[0])
        )
        return ranked[: self.num_edges]

    def top_paths(self) -> list[tuple[PathLabel, int]]:
        ranked = sorted(
            self._path_frequency.items(), key=lambda kv: (-kv[1], kv[0])
        )
        return ranked[: self.num_paths]

    def refresh(self) -> list[LabeledGraph]:
        """Materialise the tray as graphs (edges first, then 2-paths)."""
        tray: list[LabeledGraph] = []
        for (label_a, label_b), _ in self.top_edges():
            pattern = LabeledGraph(name=f"edge:{label_a}-{label_b}")
            pattern.add_vertex(0, label_a)
            pattern.add_vertex(1, label_b)
            pattern.add_edge(0, 1)
            tray.append(pattern)
        for (center, (end_a, end_b)), _ in self.top_paths():
            pattern = LabeledGraph(
                name=f"path:{end_a}-{center}-{end_b}"
            )
            pattern.add_vertex(0, center)
            pattern.add_vertex(1, end_a)
            pattern.add_vertex(2, end_b)
            pattern.add_edge(0, 1)
            pattern.add_edge(0, 2)
            tray.append(pattern)
        return tray
