"""Query-log-aware pattern weighting (the Section 3.5 extension).

MIDAS is query-log-oblivious by default because public graph repositories
rarely publish logs, but the paper notes it "can be easily extended to
accommodate query logs by considering the weight of a pattern based on
its frequency in the log during multi-scan swapping".  This module
implements that extension:

* :class:`QueryLog` records formulated queries (bounded, FIFO);
* ``pattern_weight`` is the smoothed fraction of logged queries a
  pattern is usable in — a displayed pattern users rely on is protected
  from being swapped out, and a candidate matching many logged queries
  is boosted;
* :class:`LogWeightedSwapper` multiplies the modified pattern score
  ``s'`` by that weight on both sides of the sw2 comparison.
"""

from __future__ import annotations

from collections import deque

from ..graph.labeled_graph import LabeledGraph
from ..isomorphism.matcher import contains
from .swap import MultiScanSwapper


class QueryLog:
    """A bounded FIFO log of formulated queries."""

    def __init__(self, capacity: int = 200) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._entries: deque[LabeledGraph] = deque(maxlen=capacity)

    def record(self, query: LabeledGraph) -> None:
        self._entries.append(query)

    def record_many(self, queries: list[LabeledGraph]) -> None:
        for query in queries:
            self.record(query)

    def __len__(self) -> int:
        return len(self._entries)

    def queries(self) -> list[LabeledGraph]:
        return list(self._entries)

    def usage_fraction(self, pattern: LabeledGraph) -> float:
        """Fraction of logged queries that contain *pattern*."""
        if not self._entries:
            return 0.0
        usable = sum(
            1 for query in self._entries if contains(query, pattern)
        )
        return usable / len(self._entries)

    def pattern_weight(self, pattern: LabeledGraph, smoothing: float = 1.0) -> float:
        """Multiplicative score weight ``smoothing + usage_fraction``.

        The additive smoothing keeps unlogged patterns competitive (an
        empty log degenerates to uniform weights, i.e. plain MIDAS).
        """
        if smoothing < 0:
            raise ValueError("smoothing must be non-negative")
        return smoothing + self.usage_fraction(pattern)


class LogWeightedSwapper(MultiScanSwapper):
    """The multi-scan swapper with query-log score weighting."""

    def __init__(self, oracle, query_log: QueryLog, smoothing: float = 1.0, **kwargs) -> None:
        super().__init__(oracle, **kwargs)
        self.query_log = query_log
        self.smoothing = smoothing
        self._weight_cache: dict[tuple, float] = {}

    def _weight(self, pattern: LabeledGraph) -> float:
        from ..graph.canonical import canonical_certificate

        key = canonical_certificate(pattern)
        cached = self._weight_cache.get(key)
        if cached is None:
            cached = self.query_log.pattern_weight(pattern, self.smoothing)
            self._weight_cache[key] = cached
        return cached

    def _score(self, pattern: LabeledGraph, others) -> float:
        return super()._score(pattern, others) * self._weight(pattern)
