"""Shared exception hierarchy for the repro package.

The resilience layer (``repro.resilience``) adds a dedicated subtree:
:class:`ResilienceError` groups the cooperative-cancellation signals
(:class:`DeadlineExceeded`, :class:`BudgetExhausted`) and the
transactional-rollback outcome (:class:`RolledBack`).  ``RolledBack``
also derives from :class:`MaintenanceError` so existing handlers that
treat maintenance failures generically keep working.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for errors raised by the repro framework."""


class ConfigurationError(ReproError):
    """Raised when a component is configured with invalid parameters."""


class MaintenanceError(ReproError):
    """Raised when pattern maintenance cannot proceed.

    Always chains the original failure: pass it as *cause* (or raise
    with ``from``) so the triggering exception is preserved on
    ``__cause__``/``cause`` instead of being swallowed.
    """

    def __init__(self, message: str, *, cause: BaseException | None = None):
        super().__init__(message)
        self.cause = cause
        if cause is not None:
            self.__cause__ = cause


class ResilienceError(ReproError):
    """Base of the fail-soft signal subtree (deadline/budget/rollback)."""


class DeadlineExceeded(ResilienceError):
    """A cooperative wall-clock deadline passed mid-computation."""

    def __init__(self, message: str = "deadline exceeded", *, site: str = ""):
        if site:
            message = f"{message} at {site}"
        super().__init__(message)
        self.site = site


class BudgetExhausted(ResilienceError):
    """A state/expansion budget ran out mid-computation."""

    def __init__(self, message: str = "budget exhausted", *, site: str = ""):
        if site:
            message = f"{message} at {site}"
        super().__init__(message)
        self.site = site


class RolledBack(MaintenanceError, ResilienceError):
    """A maintenance round failed and state was restored to the
    pre-round snapshot.  The original failure is chained as ``cause``."""


class JournalError(ReproError):
    """Raised when the write-ahead journal cannot append or read."""


class JournalCorruption(JournalError):
    """A journal record failed its CRC/framing check *before* the tail.

    A torn tail (a partial or corrupt record with nothing valid after
    it) is expected after a crash and is truncated silently on open;
    corruption in the middle of a segment, or in any non-final segment,
    means the log is unusable and recovery must stop loudly.
    """

    def __init__(self, message: str, *, segment: str = "", offset: int = -1):
        if segment:
            message = f"{message} (segment {segment}, offset {offset})"
        super().__init__(message)
        self.segment = segment
        self.offset = offset


class ServiceOverloaded(ReproError):
    """The serve write path shed a request (admission control).

    Maps to HTTP 429 with a ``Retry-After`` hint: the bounded update
    queue is full, so accepting the write would only grow an unbounded
    backlog the single writer can never drain.
    """

    def __init__(self, message: str, *, retry_after: float = 1.0):
        super().__init__(message)
        self.retry_after = retry_after


class ServiceUnavailable(ReproError):
    """The serve write path is down (draining, dead writer, open breaker).

    Maps to HTTP 503: unlike :class:`ServiceOverloaded` this is not a
    transient queue-depth problem — the service is shutting down, the
    maintenance loop has died permanently, or the circuit breaker is
    holding writes off after repeated round failures.
    """

    def __init__(self, message: str, *, reason: str = "unavailable"):
        super().__init__(message)
        self.reason = reason


class InvariantViolation(ReproError):
    """A runtime invariant guard (``repro.check.invariants``) failed.

    Deliberately *not* a :class:`ResilienceError`: raised inside a
    transactional maintenance round it takes the generic-failure path of
    ``Midas.apply_update`` — the round is rolled back to its pre-round
    snapshot and re-raised as :class:`RolledBack` with this violation
    chained as ``cause`` — rather than producing an aborted report.
    """

    def __init__(self, name: str, detail: str = ""):
        message = f"invariant {name!r} violated"
        if detail:
            message = f"{message}: {detail}"
        super().__init__(message)
        self.name = name
        self.detail = detail


__all__ = [
    "BudgetExhausted",
    "ConfigurationError",
    "DeadlineExceeded",
    "InvariantViolation",
    "JournalCorruption",
    "JournalError",
    "MaintenanceError",
    "ReproError",
    "ResilienceError",
    "RolledBack",
    "ServiceOverloaded",
    "ServiceUnavailable",
]
