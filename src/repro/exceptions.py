"""Shared exception hierarchy for the repro package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for errors raised by the repro framework."""


class ConfigurationError(ReproError):
    """Raised when a component is configured with invalid parameters."""


class MaintenanceError(ReproError):
    """Raised when pattern maintenance cannot proceed."""
