"""Synthetic datasets: molecule generators, motifs, evolution scenarios."""

from .evolution import (
    EvolutionScenario,
    EvolutionStep,
    family_injection,
    mixed_update,
    random_deletions,
    random_insertions,
)
from .molecules import (
    MoleculeGenerator,
    MoleculeProfile,
    aids_like,
    aids_profile,
    emol_like,
    emol_profile,
    make_molecule_database,
    pubchem_like,
    pubchem_profile,
)
from .motifs import MOTIFS, Motif, motif
from .perturbations import (
    densified_batch,
    densify_graph,
    label_swap_mapping,
    relabel_graph,
    relabeled_batch,
    rewire_graph,
    rewired_batch,
)

__all__ = [
    "MOTIFS",
    "EvolutionScenario",
    "EvolutionStep",
    "MoleculeGenerator",
    "MoleculeProfile",
    "Motif",
    "aids_like",
    "densified_batch",
    "densify_graph",
    "aids_profile",
    "emol_like",
    "emol_profile",
    "family_injection",
    "label_swap_mapping",
    "make_molecule_database",
    "mixed_update",
    "motif",
    "pubchem_like",
    "relabel_graph",
    "relabeled_batch",
    "rewire_graph",
    "rewired_batch",
    "pubchem_profile",
    "random_deletions",
    "random_insertions",
]
