"""Database evolution scenarios: batch updates that drive maintenance.

The paper's experiments modify the database with random batch additions
and deletions (+Y% / −Y%, Section 7.1) and motivate maintenance with the
arrival of a *new compound family* (boronic esters, Example 1.2).  This
module generates both:

* :func:`random_insertions` / :func:`random_deletions` /
  :func:`mixed_update` — the +Y%/−Y% batches of the automated study;
* :func:`family_injection` — a batch of molecules that all carry a motif
  rare in the base database, shifting graphlet and label distributions
  (a *major* modification by construction);
* :class:`EvolutionScenario` — a named, reproducible sequence of batches
  used by the benchmark drivers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..graph.database import BatchUpdate, GraphDatabase
from .molecules import MoleculeGenerator, MoleculeProfile
from .motifs import motif


def random_insertions(
    database: GraphDatabase,
    percent: float,
    profile: MoleculeProfile | None = None,
    seed: int = 0,
) -> BatchUpdate:
    """A ``+percent%`` batch of fresh molecules (paper's +Y%)."""
    if percent < 0:
        raise ValueError("percent must be non-negative")
    count = int(round(len(database) * percent / 100.0))
    generator = MoleculeGenerator(profile=profile, seed=seed)
    return BatchUpdate.of(insertions=generator.generate_many(count))


def random_deletions(
    database: GraphDatabase, percent: float, seed: int = 0
) -> BatchUpdate:
    """A ``−percent%`` batch deleting random existing graphs."""
    if not 0 <= percent <= 100:
        raise ValueError("percent must be within [0, 100]")
    count = int(round(len(database) * percent / 100.0))
    rng = random.Random(seed)
    victims = rng.sample(database.ids(), count)
    return BatchUpdate.of(deletions=victims)


def mixed_update(
    database: GraphDatabase,
    add_percent: float,
    delete_percent: float,
    profile: MoleculeProfile | None = None,
    seed: int = 0,
) -> BatchUpdate:
    """Simultaneous insertions and deletions in one batch."""
    additions = random_insertions(database, add_percent, profile, seed)
    deletions = random_deletions(database, delete_percent, seed + 1)
    return BatchUpdate.of(
        insertions=additions.insertions, deletions=deletions.deletions
    )


def family_injection(
    count: int,
    family_motif: str = "boronic_ester",
    profile: MoleculeProfile | None = None,
    seed: int = 0,
    grafts_per_molecule: int = 1,
) -> BatchUpdate:
    """A batch of molecules all carrying *family_motif*.

    Reproduces the paper's boronic-ester scenario: every inserted
    molecule contains the family's functional group, so the batch skews
    edge-label and graphlet frequencies and (for a large enough batch)
    registers as a major modification.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    generator = MoleculeGenerator(profile=profile, seed=seed)
    fragment = motif(family_motif)
    molecules = []
    for _ in range(count):
        molecule = generator.generate()
        for _ in range(grafts_per_molecule):
            generator.graft(molecule, fragment)
        molecules.append(molecule)
    return BatchUpdate.of(insertions=molecules)


@dataclass(frozen=True)
class EvolutionStep:
    """One named batch in a scenario."""

    name: str
    update: BatchUpdate


class EvolutionScenario:
    """A reproducible sequence of batch updates against one database.

    Example
    -------
    >>> from repro.datasets import aids_like
    >>> db = aids_like(50, seed=1)
    >>> scenario = EvolutionScenario(db, seed=1)
    >>> scenario.add_percent("grow", 20).delete_percent("shrink", 10)
    ... # doctest: +ELLIPSIS
    <...EvolutionScenario...>
    >>> [step.name for step in scenario.steps]
    ['grow', 'shrink']
    """

    def __init__(
        self,
        database: GraphDatabase,
        profile: MoleculeProfile | None = None,
        seed: int = 0,
    ) -> None:
        self._database = database.copy()
        self._profile = profile
        self._seed = seed
        self._counter = 0
        self.steps: list[EvolutionStep] = []

    def _next_seed(self) -> int:
        self._counter += 1
        return self._seed * 7919 + self._counter

    def add_percent(self, name: str, percent: float) -> "EvolutionScenario":
        update = random_insertions(
            self._database, percent, self._profile, self._next_seed()
        )
        return self._record(name, update)

    def delete_percent(self, name: str, percent: float) -> "EvolutionScenario":
        update = random_deletions(self._database, percent, self._next_seed())
        return self._record(name, update)

    def mixed(
        self, name: str, add_percent: float, delete_percent: float
    ) -> "EvolutionScenario":
        update = mixed_update(
            self._database,
            add_percent,
            delete_percent,
            self._profile,
            self._next_seed(),
        )
        return self._record(name, update)

    def inject_family(
        self, name: str, count: int, family_motif: str = "boronic_ester"
    ) -> "EvolutionScenario":
        update = family_injection(
            count, family_motif, self._profile, self._next_seed()
        )
        return self._record(name, update)

    def _record(self, name: str, update: BatchUpdate) -> "EvolutionScenario":
        self.steps.append(EvolutionStep(name, update))
        self._database.apply(update)
        return self

    @property
    def final_database(self) -> GraphDatabase:
        """Database state after all recorded steps (copy)."""
        return self._database.copy()
