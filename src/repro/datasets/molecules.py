"""Synthetic molecule-like graph generators.

Stand-ins for the paper's AIDS / PubChem / eMolecule datasets (see
DESIGN.md, substitution table).  A molecule is grown by

1. sampling a **backbone**: a random labelled tree of heavy atoms whose
   label distribution is carbon-heavy, as in real compound files;
2. optionally closing a few rings (bounded cycle rank, like real
   molecules);
3. grafting **motifs** from :mod:`repro.datasets.motifs` (rings and
   functional groups) onto random backbone atoms;
4. optionally sprinkling explicit hydrogens.

All randomness flows through one :class:`random.Random` instance so
datasets are reproducible from a seed.  The three dataset profiles
(``aids_like``, ``pubchem_like``, ``emol_like``) differ in size
distribution, label alphabet and motif mix, mirroring the qualitative
differences between the real repositories.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..graph.database import GraphDatabase
from ..graph.labeled_graph import LabeledGraph
from .motifs import MOTIFS, Motif


@dataclass
class MoleculeProfile:
    """Tunable knobs of the molecule generator."""

    #: (label, weight) pairs for backbone heavy atoms.
    backbone_labels: tuple[tuple[str, float], ...] = (
        ("C", 0.72),
        ("N", 0.12),
        ("O", 0.12),
        ("S", 0.04),
    )
    #: Inclusive range of backbone sizes (heavy atoms).
    backbone_size: tuple[int, int] = (4, 10)
    #: Probability of each potential ring-closing edge being added.
    ring_closure_probability: float = 0.15
    #: Maximum number of ring-closing edges per molecule.
    max_ring_closures: int = 2
    #: (motif name, weight) pairs; weight 0 disables a motif.
    motif_weights: tuple[tuple[str, float], ...] = (
        ("benzene", 0.8),
        ("cyclopentane", 0.3),
        ("pyridine", 0.25),
        ("furan", 0.2),
        ("thiophene", 0.15),
        ("hydroxyl", 1.0),
        ("amine", 0.7),
        ("carboxyl", 0.6),
        ("carbonyl", 0.6),
        ("nitro", 0.25),
        ("sulfonyl", 0.2),
        ("halide_cl", 0.3),
        ("thiol", 0.15),
    )
    #: Inclusive range of motif graft counts.
    motifs_per_molecule: tuple[int, int] = (1, 3)
    #: Probability that a backbone atom receives an explicit hydrogen.
    hydrogen_probability: float = 0.25

    def motif_population(self) -> tuple[list[Motif], list[float]]:
        names, weights = [], []
        for name, weight in self.motif_weights:
            if weight > 0:
                names.append(MOTIFS[name])
                weights.append(weight)
        return names, weights


class MoleculeGenerator:
    """Seeded generator of molecule-like labelled graphs."""

    def __init__(
        self, profile: MoleculeProfile | None = None, seed: int = 0
    ) -> None:
        self.profile = profile or MoleculeProfile()
        self._rng = random.Random(seed)
        self._motifs, self._motif_weights = self.profile.motif_population()

    # ------------------------------------------------------------------
    def generate(self) -> LabeledGraph:
        """Produce one molecule."""
        graph = self._backbone()
        self._close_rings(graph)
        motif_count = self._rng.randint(*self.profile.motifs_per_molecule)
        for _ in range(motif_count):
            if self._motifs:
                chosen = self._rng.choices(
                    self._motifs, weights=self._motif_weights
                )[0]
                self.graft(graph, chosen)
        self._add_hydrogens(graph)
        return graph

    def generate_many(self, count: int) -> list[LabeledGraph]:
        return [self.generate() for _ in range(count)]

    # ------------------------------------------------------------------
    def _sample_backbone_label(self) -> str:
        labels = [label for label, _ in self.profile.backbone_labels]
        weights = [weight for _, weight in self.profile.backbone_labels]
        return self._rng.choices(labels, weights=weights)[0]

    def _backbone(self) -> LabeledGraph:
        size = self._rng.randint(*self.profile.backbone_size)
        graph = LabeledGraph()
        graph.add_vertex(0, self._sample_backbone_label())
        for vertex in range(1, size):
            graph.add_vertex(vertex, self._sample_backbone_label())
            parent = self._rng.randrange(vertex)
            graph.add_edge(vertex, parent)
        return graph

    def _close_rings(self, graph: LabeledGraph) -> None:
        vertices = sorted(graph.vertices(), key=repr)
        closures = 0
        for _ in range(len(vertices)):
            if closures >= self.profile.max_ring_closures:
                break
            if self._rng.random() >= self.profile.ring_closure_probability:
                continue
            u, v = self._rng.sample(vertices, 2)
            if not graph.has_edge(u, v):
                graph.add_edge(u, v)
                closures += 1

    def graft(self, graph: LabeledGraph, motif: Motif) -> None:
        """Attach one *motif* instance to a random existing vertex."""
        hosts = [v for v in graph.vertices() if graph.label(v) != "H"]
        if not hosts:
            hosts = list(graph.vertices())
        anchor = self._rng.choice(sorted(hosts, key=repr))
        base = graph.num_vertices
        # Vertex ids are dense integers by construction.
        mapping = {i: base + i for i in range(motif.num_vertices)}
        for index, label in enumerate(motif.labels):
            graph.add_vertex(mapping[index], label)
        for u, v in motif.edges:
            graph.add_edge(mapping[u], mapping[v])
        attach_at = self._rng.choice(motif.attachments)
        graph.add_edge(anchor, mapping[attach_at])

    def _add_hydrogens(self, graph: LabeledGraph) -> None:
        probability = self.profile.hydrogen_probability
        if probability <= 0:
            return
        for vertex in sorted(graph.vertices(), key=repr):
            if graph.label(vertex) == "H":
                continue
            if self._rng.random() < probability:
                hydrogen = graph.num_vertices
                graph.add_vertex(hydrogen, "H")
                graph.add_edge(vertex, hydrogen)


# ----------------------------------------------------------------------
# dataset profiles
# ----------------------------------------------------------------------
def aids_profile() -> MoleculeProfile:
    """AIDS-antiviral-like: mid-sized, nitrogen-rich molecules."""
    return MoleculeProfile(
        backbone_labels=(
            ("C", 0.66),
            ("N", 0.16),
            ("O", 0.13),
            ("S", 0.05),
        ),
        backbone_size=(5, 12),
        motifs_per_molecule=(1, 3),
        hydrogen_probability=0.2,
    )


def pubchem_profile() -> MoleculeProfile:
    """PubChem-like: broader motif mix, slightly larger molecules."""
    return MoleculeProfile(
        backbone_labels=(
            ("C", 0.7),
            ("N", 0.11),
            ("O", 0.13),
            ("S", 0.04),
            ("P", 0.02),
        ),
        backbone_size=(5, 14),
        motif_weights=(
            ("benzene", 1.0),
            ("pyridine", 0.3),
            ("furan", 0.2),
            ("thiophene", 0.2),
            ("hydroxyl", 1.0),
            ("amine", 0.8),
            ("carboxyl", 0.7),
            ("carbonyl", 0.7),
            ("nitro", 0.3),
            ("sulfonyl", 0.25),
            ("phosphate", 0.15),
            ("halide_cl", 0.35),
            ("halide_f", 0.25),
            ("thiol", 0.15),
        ),
        motifs_per_molecule=(1, 4),
        hydrogen_probability=0.3,
    )


def emol_profile() -> MoleculeProfile:
    """eMolecule-like: smaller fragments, fewer heteroatoms."""
    return MoleculeProfile(
        backbone_labels=(
            ("C", 0.78),
            ("N", 0.1),
            ("O", 0.1),
            ("S", 0.02),
        ),
        backbone_size=(3, 8),
        motifs_per_molecule=(1, 2),
        hydrogen_probability=0.15,
    )


def make_molecule_database(
    count: int,
    profile: MoleculeProfile | None = None,
    seed: int = 0,
) -> GraphDatabase:
    """Generate a database of *count* molecules under *profile*."""
    generator = MoleculeGenerator(profile=profile, seed=seed)
    return GraphDatabase(generator.generate_many(count))


def aids_like(count: int, seed: int = 0) -> GraphDatabase:
    return make_molecule_database(count, aids_profile(), seed)


def pubchem_like(count: int, seed: int = 0) -> GraphDatabase:
    return make_molecule_database(count, pubchem_profile(), seed)


def emol_like(count: int, seed: int = 0) -> GraphDatabase:
    return make_molecule_database(count, emol_profile(), seed)
