"""Graph perturbations for robustness scenarios.

Beyond the paper's insert/delete batches, deployments see *qualitative*
drifts: label conventions change, bonds get rewired, noise creeps in.
These perturbation operators build batches that stress specific parts of
MIDAS:

* :func:`relabeled_batch` — structure-preserving label substitution.
  Notably, the graphlet-frequency detector (Section 3.4) is label-blind:
  graphlets are unlabelled patterns, so a pure relabeling registers a
  near-zero GFD distance even though every displayed pattern may have
  become useless.  The test suite pins this blind spot down and
  DESIGN.md records it as a faithful limitation of the paper's design.
* :func:`rewired_batch` — degree-biased edge rewiring that changes
  topology (and therefore the GFD) while keeping the label multiset.
* :func:`densified_batch` — random chord insertion, pushing graphs
  toward triangle/clique graphlets.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from ..graph.database import BatchUpdate, GraphDatabase
from ..graph.labeled_graph import LabeledGraph


def relabel_graph(
    graph: LabeledGraph, mapping: dict[str, str]
) -> LabeledGraph:
    """A copy of *graph* with vertex labels substituted via *mapping*."""
    clone = LabeledGraph(name=graph.name)
    for vertex in graph.vertices():
        label = graph.label(vertex)
        clone.add_vertex(vertex, mapping.get(label, label))
    for u, v in graph.edges():
        clone.add_edge(u, v)
    return clone


def rewire_graph(
    graph: LabeledGraph, swaps: int, rng: random.Random
) -> LabeledGraph:
    """Degree-preserving-ish rewiring: move edge endpoints randomly.

    Keeps the label multiset and edge count; connectivity may change, so
    callers needing connected graphs should check.
    """
    clone = graph.copy()
    for _ in range(swaps):
        edges = list(clone.edges())
        vertices = sorted(clone.vertices(), key=repr)
        if not edges or len(vertices) < 3:
            break
        u, v = rng.choice(sorted(edges))
        candidates = [
            w for w in vertices if w != u and not clone.has_edge(u, w)
        ]
        if not candidates:
            continue
        w = rng.choice(candidates)
        clone.remove_edge(u, v)
        clone.add_edge(u, w)
    return clone


def densify_graph(
    graph: LabeledGraph, chords: int, rng: random.Random
) -> LabeledGraph:
    """Add up to *chords* random non-edges (pushes GFD toward cycles)."""
    clone = graph.copy()
    vertices = sorted(clone.vertices(), key=repr)
    attempts = 0
    added = 0
    while added < chords and attempts < chords * 10 and len(vertices) >= 2:
        attempts += 1
        u, v = rng.sample(vertices, 2)
        if not clone.has_edge(u, v):
            clone.add_edge(u, v)
            added += 1
    return clone


def _pick_victims(
    database: GraphDatabase, count: int, rng: random.Random
) -> list[int]:
    ids = database.ids()
    count = min(count, len(ids))
    return rng.sample(ids, count)


def relabeled_batch(
    database: GraphDatabase,
    count: int,
    mapping: dict[str, str],
    seed: int = 0,
) -> BatchUpdate:
    """Replace *count* random graphs with relabeled copies (delete+insert)."""
    rng = random.Random(seed)
    victims = _pick_victims(database, count, rng)
    replacements = [
        relabel_graph(database[gid], mapping) for gid in victims
    ]
    return BatchUpdate.of(insertions=replacements, deletions=victims)


def rewired_batch(
    database: GraphDatabase,
    count: int,
    swaps_per_graph: int = 3,
    seed: int = 0,
) -> BatchUpdate:
    """Replace *count* random graphs with rewired copies."""
    rng = random.Random(seed)
    victims = _pick_victims(database, count, rng)
    replacements = [
        rewire_graph(database[gid], swaps_per_graph, rng)
        for gid in victims
    ]
    return BatchUpdate.of(insertions=replacements, deletions=victims)


def densified_batch(
    database: GraphDatabase,
    count: int,
    chords_per_graph: int = 2,
    seed: int = 0,
) -> BatchUpdate:
    """Replace *count* random graphs with densified copies."""
    rng = random.Random(seed)
    victims = _pick_victims(database, count, rng)
    replacements = [
        densify_graph(database[gid], chords_per_graph, rng)
        for gid in victims
    ]
    return BatchUpdate.of(insertions=replacements, deletions=victims)


def label_swap_mapping(labels: Sequence[str]) -> dict[str, str]:
    """A cyclic substitution over *labels* (every label changes)."""
    ordered = list(labels)
    if len(ordered) < 2:
        return {}
    return {
        ordered[i]: ordered[(i + 1) % len(ordered)]
        for i in range(len(ordered))
    }
