"""Chemical motif library for the synthetic dataset generators.

The paper evaluates on repositories of chemical compound graphs (AIDS,
PubChem, eMolecule).  Those files are not redistributable here, so the
generators in :mod:`repro.datasets.molecules` assemble molecule-like
graphs from the structural motifs below: rings, chains and functional
groups with realistic vertex labels.  A motif is a tiny labelled graph
fragment plus a list of *attachment points* — vertices where the
generator may bond the motif to the growing molecule.

The ``boronic_acid`` / ``boronic_ester`` motifs reproduce the paper's
running example (Examples 1.1 and 1.2): injecting a batch of
boronic-ester compounds shifts the graphlet and label distributions and
should trigger a major modification.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..graph.labeled_graph import LabeledGraph


@dataclass(frozen=True)
class Motif:
    """A reusable molecular fragment.

    Attributes
    ----------
    name:
        Identifier used by generator configurations.
    labels:
        Vertex labels, indexed 0..n−1.
    edges:
        Fragment bonds.
    attachments:
        Vertex indices where the fragment may bond to the rest of a
        molecule.
    """

    name: str
    labels: tuple[str, ...]
    edges: tuple[tuple[int, int], ...]
    attachments: tuple[int, ...]

    def instantiate(self) -> LabeledGraph:
        """Materialise the motif as a standalone graph."""
        return LabeledGraph.from_edges(
            dict(enumerate(self.labels)), self.edges, name=self.name
        )

    @property
    def num_vertices(self) -> int:
        return len(self.labels)


def _ring(name: str, labels: str) -> Motif:
    n = len(labels)
    edges = tuple((i, (i + 1) % n) for i in range(n))
    return Motif(name, tuple(labels), edges, tuple(range(n)))


MOTIFS: dict[str, Motif] = {
    motif.name: motif
    for motif in (
        # Rings ---------------------------------------------------------
        _ring("benzene", "CCCCCC"),
        _ring("cyclopentane", "CCCCC"),
        _ring("pyridine", "CCCCCN"),
        _ring("furan", "CCCCO"),
        _ring("thiophene", "CCCCS"),
        # Chains ----------------------------------------------------------
        Motif("ethyl", ("C", "C"), ((0, 1),), (0, 1)),
        Motif("propyl", ("C", "C", "C"), ((0, 1), (1, 2)), (0, 2)),
        # Functional groups ----------------------------------------------
        Motif("hydroxyl", ("O", "H"), ((0, 1),), (0,)),
        Motif("amine", ("N", "H", "H"), ((0, 1), (0, 2)), (0,)),
        Motif("carboxyl", ("C", "O", "O", "H"), ((0, 1), (0, 2), (2, 3)), (0,)),
        Motif("carbonyl", ("C", "O"), ((0, 1),), (0,)),
        Motif("nitro", ("N", "O", "O"), ((0, 1), (0, 2)), (0,)),
        Motif("sulfonyl", ("S", "O", "O"), ((0, 1), (0, 2)), (0,)),
        Motif("phosphate", ("P", "O", "O", "O"), ((0, 1), (0, 2), (0, 3)), (0,)),
        Motif("halide_cl", ("Cl",), (), (0,)),
        Motif("halide_f", ("F",), (), (0,)),
        Motif("thiol", ("S", "H"), ((0, 1),), (0,)),
        # The paper's running example ------------------------------------
        Motif(
            "boronic_acid",
            ("B", "O", "O", "H", "H"),
            ((0, 1), (0, 2), (1, 3), (2, 4)),
            (0,),
        ),
        Motif(
            # B(OC)(OC) — the ester group outlined in the paper's Figure 1.
            "boronic_ester",
            ("B", "O", "O", "C", "C"),
            ((0, 1), (0, 2), (1, 3), (2, 4)),
            (0, 3, 4),
        ),
    )
}


def motif(name: str) -> Motif:
    try:
        return MOTIFS[name]
    except KeyError:
        raise KeyError(
            f"unknown motif {name!r}; available: {sorted(MOTIFS)}"
        ) from None
