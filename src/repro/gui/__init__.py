"""A simulated visual graph query interface (panel + canvas + sessions)."""

from .canvas import ActionKind, CanvasAction, QueryCanvas
from .interface import SessionRecord, VisualInterface
from .panel import PatternPanel
from .render import ascii_adjacency, linear_notation, render_panel, render_pattern

__all__ = [
    "ActionKind",
    "CanvasAction",
    "PatternPanel",
    "QueryCanvas",
    "ascii_adjacency",
    "linear_notation",
    "render_panel",
    "render_pattern",
    "SessionRecord",
    "VisualInterface",
]
