"""The query canvas of the visual interface.

Models Panel 2 of the paper's GUI (Figure 1): the surface on which the
user constructs a subgraph query.  Every user-visible atomic action —
adding a vertex, adding an edge, deleting either, or dropping a whole
canned pattern — is one :class:`CanvasAction` appended to the action log,
so the log length is exactly the paper's *step* count and the canvas can
be replayed or undone action by action.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..graph.labeled_graph import GraphError, LabeledGraph, VertexId


class ActionKind(enum.Enum):
    """The atomic interface actions (pattern drop counts as one)."""

    ADD_VERTEX = "add_vertex"
    ADD_EDGE = "add_edge"
    DELETE_VERTEX = "delete_vertex"
    DELETE_EDGE = "delete_edge"
    PLACE_PATTERN = "place_pattern"


@dataclass(frozen=True)
class CanvasAction:
    """One logged interface action."""

    kind: ActionKind
    payload: tuple


class QueryCanvas:
    """A mutable query graph with an action log and undo support."""

    def __init__(self) -> None:
        self._graph = LabeledGraph(name="canvas")
        self._log: list[CanvasAction] = []
        self._next_vertex = 0

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def graph(self) -> LabeledGraph:
        """The current query graph (live view — do not mutate)."""
        return self._graph

    @property
    def steps(self) -> int:
        """Number of atomic actions performed (the paper's steps)."""
        return len(self._log)

    @property
    def log(self) -> list[CanvasAction]:
        return list(self._log)

    def snapshot(self) -> LabeledGraph:
        """An independent copy of the current query graph."""
        return self._graph.copy()

    # ------------------------------------------------------------------
    # atomic actions
    # ------------------------------------------------------------------
    def add_vertex(self, label: str) -> VertexId:
        vertex = self._next_vertex
        self._next_vertex += 1
        self._graph.add_vertex(vertex, label)
        self._log.append(
            CanvasAction(ActionKind.ADD_VERTEX, (vertex, label))
        )
        return vertex

    def add_edge(self, u: VertexId, v: VertexId) -> None:
        if self._graph.has_edge(u, v):
            raise GraphError(f"edge ({u!r}, {v!r}) already drawn")
        self._graph.add_edge(u, v)
        self._log.append(CanvasAction(ActionKind.ADD_EDGE, (u, v)))

    def delete_vertex(self, vertex: VertexId) -> None:
        label = self._graph.label(vertex)
        incident = [
            (vertex, n) for n in sorted(self._graph.neighbors(vertex), key=repr)
        ]
        self._graph.remove_vertex(vertex)
        self._log.append(
            CanvasAction(
                ActionKind.DELETE_VERTEX, (vertex, label, tuple(incident))
            )
        )

    def delete_edge(self, u: VertexId, v: VertexId) -> None:
        self._graph.remove_edge(u, v)
        self._log.append(CanvasAction(ActionKind.DELETE_EDGE, (u, v)))

    def place_pattern(self, pattern: LabeledGraph) -> dict[VertexId, VertexId]:
        """Drop a canned pattern onto the canvas — one single action.

        Returns the mapping pattern-vertex → fresh canvas-vertex.
        """
        mapping: dict[VertexId, VertexId] = {}
        for vertex in sorted(pattern.vertices(), key=repr):
            canvas_vertex = self._next_vertex
            self._next_vertex += 1
            self._graph.add_vertex(canvas_vertex, pattern.label(vertex))
            mapping[vertex] = canvas_vertex
        for u, v in pattern.edges():
            self._graph.add_edge(mapping[u], mapping[v])
        self._log.append(
            CanvasAction(
                ActionKind.PLACE_PATTERN,
                (tuple(sorted(mapping.items(), key=repr)),),
            )
        )
        return mapping

    # ------------------------------------------------------------------
    # undo
    # ------------------------------------------------------------------
    def undo(self) -> CanvasAction:
        """Revert the most recent action (and drop it from the log)."""
        if not self._log:
            raise GraphError("nothing to undo")
        action = self._log.pop()
        if action.kind is ActionKind.ADD_VERTEX:
            vertex, _ = action.payload
            self._graph.remove_vertex(vertex)
        elif action.kind is ActionKind.ADD_EDGE:
            u, v = action.payload
            self._graph.remove_edge(u, v)
        elif action.kind is ActionKind.DELETE_EDGE:
            u, v = action.payload
            self._graph.add_edge(u, v)
        elif action.kind is ActionKind.DELETE_VERTEX:
            vertex, label, incident = action.payload
            self._graph.add_vertex(vertex, label)
            for u, v in incident:
                self._graph.add_edge(u, v)
        elif action.kind is ActionKind.PLACE_PATTERN:
            (mapping_items,) = action.payload
            for _, canvas_vertex in mapping_items:
                self._graph.remove_vertex(canvas_vertex)
        return action

    def clear(self) -> None:
        """Reset the canvas and the action log."""
        self._graph = LabeledGraph(name="canvas")
        self._log = []
        self._next_vertex = 0
