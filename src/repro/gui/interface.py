"""The visual graph query interface: panel + canvas + session records.

:class:`VisualInterface` ties the pattern panel and the query canvas
together and can *execute* a :class:`~repro.workload.formulation
.FormulationPlan` end to end: each placement drops the planned pattern
variant on the canvas (one step, plus its deletion edits) and the
remaining vertices/edges are drawn one at a time.  Executing a plan and
checking the canvas against the intended query is the strongest
correctness check the repository has for the planner — it is exercised
in the test suite and the example scripts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..graph.canonical import are_isomorphic
from ..graph.labeled_graph import LabeledGraph, VertexId
from ..patterns.pattern import PatternSet
from ..workload.formulation import FormulationPlan, plan_formulation
from .canvas import QueryCanvas
from .panel import PatternPanel


@dataclass
class SessionRecord:
    """Outcome of formulating one query through the interface."""

    query_name: str | None
    steps: int
    pattern_uses: int
    deletions: int
    vertices_drawn: int
    edges_drawn: int
    success: bool
    scanned: int = 0

    def as_dict(self) -> dict:
        return {
            "query": self.query_name,
            "steps": self.steps,
            "pattern_uses": self.pattern_uses,
            "deletions": self.deletions,
            "vertices_drawn": self.vertices_drawn,
            "edges_drawn": self.edges_drawn,
            "success": self.success,
            "scanned": self.scanned,
        }


@dataclass
class VisualInterface:
    """A simulated direct-manipulation query interface."""

    panel: PatternPanel = field(default_factory=PatternPanel)
    canvas: QueryCanvas = field(default_factory=QueryCanvas)
    sessions: list[SessionRecord] = field(default_factory=list)

    @classmethod
    def with_patterns(cls, patterns: PatternSet) -> "VisualInterface":
        return cls(panel=PatternPanel(patterns))

    # ------------------------------------------------------------------
    def refresh_patterns(self, patterns: PatternSet) -> None:
        """Install a maintained pattern set (the MIDAS hand-off)."""
        self.panel.refresh(patterns)

    # ------------------------------------------------------------------
    def execute_plan(
        self,
        query: LabeledGraph,
        plan: FormulationPlan,
        patterns: list[LabeledGraph] | None = None,
    ) -> SessionRecord:
        """Replay *plan* on a fresh canvas and verify the result.

        The canvas is cleared first.  Each placement drops the *original*
        pattern (one action) and then deletes the pendant vertices the
        planner trimmed, exactly as a user edits a dropped pattern;
        after execution the canvas graph must be isomorphic to *query*
        (recorded in ``success``).
        """
        if patterns is None:
            patterns = [p.graph for p in self.panel.displayed()]
        self.canvas.clear()
        scanned_before = self.panel.scanned
        query_to_canvas: dict[VertexId, VertexId] = {}
        for placement in plan.placed:
            if placement.variant is None or placement.embedding is None:
                raise ValueError(
                    "plan lacks embeddings; build it with plan_formulation"
                )
            # Browsing the panel to locate the pattern.
            self.panel.scanned += max(self.panel.gamma // 2, 1)
            self.panel.picked += 1
            original = patterns[placement.pattern_index]
            mapping = self.canvas.place_pattern(original)
            # Edit the dropped pattern: delete the trimmed pendants,
            # leaves first so each deletion removes one vertex + edge.
            trimmed = set(original.vertices()) - set(
                placement.variant.vertices()
            )
            pending = {mapping[v] for v in trimmed}
            while pending:
                leaf = min(
                    pending,
                    key=lambda cv: (self.canvas.graph.degree(cv), repr(cv)),
                )
                self.canvas.delete_vertex(leaf)
                pending.discard(leaf)
            for pattern_vertex, query_vertex in placement.embedding.items():
                query_to_canvas[query_vertex] = mapping[pattern_vertex]
        for query_vertex in plan.remaining_vertices:
            query_to_canvas[query_vertex] = self.canvas.add_vertex(
                query.label(query_vertex)
            )
        for u, v in plan.remaining_edges:
            self.canvas.add_edge(query_to_canvas[u], query_to_canvas[v])
        success = are_isomorphic(self.canvas.graph, query)
        record = SessionRecord(
            query_name=query.name,
            steps=plan.steps,
            pattern_uses=plan.num_pattern_uses,
            deletions=plan.num_deletions,
            vertices_drawn=plan.vertices_added,
            edges_drawn=plan.edges_added,
            success=success,
            scanned=self.panel.scanned - scanned_before,
        )
        self.sessions.append(record)
        return record

    def formulate(
        self, query: LabeledGraph, max_edits: int = 0
    ) -> SessionRecord:
        """Plan and execute the formulation of *query* in one call."""
        plan = plan_formulation(
            query,
            [p.graph for p in self.panel.displayed()],
            max_edits=max_edits,
        )
        return self.execute_plan(query, plan)

    # ------------------------------------------------------------------
    def session_summary(self) -> dict:
        """Aggregate statistics over all recorded sessions."""
        if not self.sessions:
            return {
                "sessions": 0,
                "avg_steps": 0.0,
                "success_rate": 0.0,
                "pattern_usage_rate": 0.0,
            }
        total = len(self.sessions)
        return {
            "sessions": total,
            "avg_steps": sum(s.steps for s in self.sessions) / total,
            "success_rate": sum(s.success for s in self.sessions) / total,
            "pattern_usage_rate": sum(
                1 for s in self.sessions if s.pattern_uses
            )
            / total,
        }
