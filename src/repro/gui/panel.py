"""The canned-pattern panel of the visual interface.

Models Panel 4 of the paper's GUI (Figure 1): the γ displayed canned
patterns a user browses before dragging one onto the canvas.  Browsing is
modelled explicitly (``browse`` yields patterns in display order) because
the paper's *visual mapping time* (VMT) is exactly the time spent in this
panel.  The panel is the component MIDAS refreshes: ``refresh`` swaps the
displayed set in a single update, as Section 6.2 prescribes.
"""

from __future__ import annotations

from collections.abc import Iterator

from ..graph.labeled_graph import LabeledGraph
from ..patterns.pattern import CannedPattern, PatternSet


class PatternPanel:
    """The displayed pattern set plus browsing bookkeeping."""

    def __init__(self, patterns: PatternSet | None = None) -> None:
        self._patterns = patterns if patterns is not None else PatternSet()
        #: How many panel entries were visually scanned in this session.
        self.scanned = 0
        #: How many patterns were picked (dragged) in this session.
        self.picked = 0

    # ------------------------------------------------------------------
    @property
    def gamma(self) -> int:
        """Number of displayed patterns."""
        return len(self._patterns)

    def displayed(self) -> list[CannedPattern]:
        return list(self._patterns)

    def pattern_set(self) -> PatternSet:
        return self._patterns

    # ------------------------------------------------------------------
    def browse(self) -> Iterator[CannedPattern]:
        """Iterate the panel in display order, counting each scan."""
        for pattern in self._patterns:
            self.scanned += 1
            yield pattern

    def find_usable(
        self, query: LabeledGraph, max_edits: int = 0
    ) -> CannedPattern | None:
        """Browse for the first pattern usable in *query*.

        "Usable" follows the automated-study rule: the pattern (or, with
        ``max_edits`` > 0, a pendant-trimmed variant) embeds in the query.
        """
        from ..workload.formulation import _pattern_variants
        from ..isomorphism.matcher import contains

        for pattern in self.browse():
            for variant, _ in _pattern_variants(pattern.graph, max_edits):
                if contains(query, variant):
                    self.picked += 1
                    return pattern
        return None

    def pick(self, pattern_id: int) -> CannedPattern:
        """Pick a specific displayed pattern (counts as a scan + pick)."""
        pattern = self._patterns.get(pattern_id)
        self.scanned += 1
        self.picked += 1
        return pattern

    # ------------------------------------------------------------------
    def refresh(self, new_patterns: PatternSet) -> None:
        """Swap the displayed set in one update (maintenance hand-off)."""
        self._patterns = new_patterns

    def reset_counters(self) -> None:
        self.scanned = 0
        self.picked = 0
