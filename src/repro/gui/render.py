"""Text rendering of patterns and canvases.

The real GUI draws patterns in Panel 4; this reproduction renders them as
text so examples, logs and test failures stay readable:

* :func:`linear_notation` — a SMILES-flavoured linear string (DFS with
  ring-closure digits), compact and human-scannable;
* :func:`ascii_adjacency` — an indented adjacency sketch for structures
  too branched to read linearly;
* :func:`render_panel` — the whole pattern panel as a numbered list.
"""

from __future__ import annotations

from ..graph.labeled_graph import LabeledGraph, VertexId, edge_key
from ..patterns.pattern import PatternSet


def linear_notation(graph: LabeledGraph) -> str:
    """A SMILES-like linear rendering of a connected labelled graph.

    DFS from the highest-degree vertex; branches are parenthesised and
    back-edges become numbered ring closures, e.g. a benzene-like ring
    renders as ``C1-C-C-C-C-C-1``.
    """
    if graph.num_vertices == 0:
        return "(empty)"
    root = max(sorted(graph.vertices(), key=repr), key=graph.degree)
    visited: set[VertexId] = set()
    tree_edges: set[tuple] = set()
    ring_ids: dict[tuple, int] = {}
    next_ring = [1]

    def assign_rings(vertex: VertexId, parent: VertexId | None) -> None:
        visited.add(vertex)
        for neighbor in sorted(graph.neighbors(vertex), key=repr):
            key = edge_key(vertex, neighbor)
            if neighbor == parent or key in tree_edges or key in ring_ids:
                continue
            if neighbor in visited:
                ring_ids[key] = next_ring[0]
                next_ring[0] += 1
            else:
                tree_edges.add(key)
                assign_rings(neighbor, vertex)

    assign_rings(root, None)

    emitted: set[VertexId] = set()

    def emit(vertex: VertexId, parent: VertexId | None) -> str:
        emitted.add(vertex)
        token = graph.label(vertex)
        for key, ring in sorted(ring_ids.items(), key=lambda kv: kv[1]):
            if vertex in key:
                token += str(ring)
        children = [
            n
            for n in sorted(graph.neighbors(vertex), key=repr)
            if n != parent
            and edge_key(vertex, n) in tree_edges
            and n not in emitted
        ]
        parts = [token]
        for i, child in enumerate(children):
            rendered = emit(child, vertex)
            if i < len(children) - 1:
                parts.append(f"(-{rendered})")
            else:
                parts.append(f"-{rendered}")
        return "".join(parts)

    return emit(root, None)


def ascii_adjacency(graph: LabeledGraph) -> str:
    """An adjacency sketch, one vertex per line."""
    if graph.num_vertices == 0:
        return "(empty graph)"
    lines = [f"|V|={graph.num_vertices} |E|={graph.num_edges}"]
    for vertex in sorted(graph.vertices(), key=repr):
        neighbors = ", ".join(
            f"{graph.label(n)}{n}"
            for n in sorted(graph.neighbors(vertex), key=repr)
        )
        lines.append(f"  {graph.label(vertex)}{vertex} — {neighbors or '·'}")
    return "\n".join(lines)


def render_pattern(graph: LabeledGraph, max_linear_vertices: int = 14) -> str:
    """Pick the best textual rendering for one pattern."""
    if graph.num_vertices == 0:
        return "(empty)"
    if not graph.is_connected():
        return ascii_adjacency(graph)
    if graph.num_vertices <= max_linear_vertices:
        return linear_notation(graph)
    return ascii_adjacency(graph)


def render_panel(patterns: PatternSet) -> str:
    """The whole pattern panel as a numbered list (Panel 4 in text)."""
    if len(patterns) == 0:
        return "(empty panel)"
    lines = [f"pattern panel — γ = {len(patterns)}"]
    for pattern in patterns:
        provenance = f" [{pattern.provenance}]" if pattern.provenance else ""
        lines.append(
            f"  #{pattern.pattern_id:<3} "
            f"({pattern.num_vertices}v/{pattern.num_edges}e){provenance} "
            f"{render_pattern(pattern.graph)}"
        )
    return "\n".join(lines)
